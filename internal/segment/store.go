package segment

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"rumble/internal/dfs"
	"rumble/internal/item"
	"rumble/internal/jparse"
	"rumble/internal/vector"
)

// ManifestName is the dataset manifest file inside a segments directory.
const ManifestName = "MANIFEST.json"

// Dir returns the segments directory of a JSON-lines source path: a
// sibling "<path>.segments" directory, which dfs.ListSplits never
// confuses with part files of the source.
func Dir(source string) string { return source + ".segments" }

// Meta describes one segment in the manifest: its file, row count, file
// size and per-column zone maps (sorted by column name).
type Meta struct {
	File  string    `json:"file"`
	Rows  int       `json:"rows"`
	Bytes int64     `json:"bytes"`
	Cols  []ColZone `json:"cols"`
}

// Zone returns the zone map of the named column, when any row of the
// segment has it.
func (m Meta) Zone(name string) (ZoneMap, bool) {
	i := sort.Search(len(m.Cols), func(i int) bool { return m.Cols[i].Name >= name })
	if i < len(m.Cols) && m.Cols[i].Name == name {
		return m.Cols[i].Zone, true
	}
	return ZoneMap{}, false
}

// Manifest is the dataset-level metadata: the content hash of the source
// it was ingested from and the ordered segment list.
type Manifest struct {
	Version     int    `json:"version"`
	SourceHash  string `json:"source_hash"`
	SourceBytes int64  `json:"source_bytes"`
	Rows        int64  `json:"rows"`
	Segments    []Meta `json:"segments"`
}

// Dataset is an opened, validated segment dataset. Fetch serves decoded
// segments, through the owning store's buffer pool when there is one.
type Dataset struct {
	Source   string
	Dir      string
	Manifest Manifest
	pool     *pool
}

// NumSegments returns the segment count.
func (d *Dataset) NumSegments() int { return len(d.Manifest.Segments) }

// Meta returns the manifest entry of segment i.
func (d *Dataset) Meta(i int) Meta { return d.Manifest.Segments[i] }

// key is the buffer-pool residency key of segment i's item rows. It
// includes the manifest's source hash: a background re-ingest reuses
// segment file names, and pool entries decoded from the previous
// generation must never serve the new one.
func (d *Dataset) key(i int) string {
	return d.Dir + "\x00" + d.Manifest.SourceHash + "\x00" + d.Manifest.Segments[i].File
}

// Fetch returns the decoded rows of segment i. coldBlocks is non-zero
// exactly when this call read and decoded the segment file (a buffer-pool
// miss, or no pool): it reports the simulated I/O blocks the read
// charges, rounded by the same shared accounting rules as raw line scans.
func (d *Dataset) Fetch(i int) (rows []item.Item, coldBlocks int, err error) {
	if d.pool == nil {
		v, _, blocks, err := d.loadRows(i)
		rows, _ = v.([]item.Item)
		return rows, blocks, err
	}
	v, blocks, err := d.pool.get(d.key(i), d.Manifest.Segments[i].Bytes, func() (any, int64, int, error) {
		return d.loadRows(i)
	})
	rows, _ = v.([]item.Item)
	return rows, blocks, err
}

// FetchBatch returns segment i decoded straight into vector lanes for the
// projected fields, skipping every other column's lane bytes. Distinct
// projections of one segment are distinct pool residencies, each charged
// only for the lanes it actually pins — so two plans projecting different
// column sets never double-charge a shared entry, and --segment-cache-bytes
// keeps bounding real memory.
func (d *Dataset) FetchBatch(i int, fields []string) (cs *ColumnSet, coldBlocks int, err error) {
	if d.pool == nil {
		v, _, blocks, err := d.loadCols(i, fields)
		cs, _ = v.(*ColumnSet)
		return cs, blocks, err
	}
	sorted := append([]string(nil), fields...)
	sort.Strings(sorted)
	key := d.key(i) + "\x00cols"
	for _, f := range sorted {
		key += "\x00" + f
	}
	v, blocks, err := d.pool.get(key, d.Manifest.Segments[i].Bytes, func() (any, int64, int, error) {
		return d.loadCols(i, fields)
	})
	cs, _ = v.(*ColumnSet)
	return cs, blocks, err
}

// readSegment reads segment i's byte image and reports its I/O blocks.
func (d *Dataset) readSegment(i int) (Meta, string, []byte, int, error) {
	meta := d.Manifest.Segments[i]
	path := filepath.Join(d.Dir, meta.File)
	data, err := os.ReadFile(path)
	if err != nil {
		return meta, path, nil, 0, errf(path, "read: %v", err)
	}
	return meta, path, data, dfs.BlocksFor(int64(len(data))), nil
}

// loadRows reads, decodes and validates segment i from disk as item rows,
// returning the in-memory cost the rows pin.
func (d *Dataset) loadRows(i int) (any, int64, int, error) {
	meta, path, data, blocks, err := d.readSegment(i)
	if err != nil {
		return nil, 0, 0, err
	}
	dec, err := Decode(path, data)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(dec.Rows) != meta.Rows {
		return nil, 0, 0, errf(path, "segment holds %d rows, manifest says %d", len(dec.Rows), meta.Rows)
	}
	// Zone-map consistency: recompute from the decoded lanes and compare.
	// Pruning decisions must never rest on summaries the data contradicts.
	if !zonesEqual(ZoneMaps(dec.Rows), meta.Cols) {
		return nil, 0, 0, errf(path, "zone maps inconsistent with lane data")
	}
	return dec.Rows, decodedCost(dec.Rows), blocks, nil
}

// loadCols reads and decodes segment i's projected lanes, returning the
// lane bytes they pin. The zone-map consistency check runs per projected
// column: the prunable fields a scan could have skipped on are always a
// subset of the fields it projects, so summaries the lane data contradicts
// are still caught before any pruning decision can rest on them.
func (d *Dataset) loadCols(i int, fields []string) (any, int64, int, error) {
	meta, path, data, blocks, err := d.readSegment(i)
	if err != nil {
		return nil, 0, 0, err
	}
	cs, err := DecodeColumns(path, data, fields)
	if err != nil {
		return nil, 0, 0, err
	}
	if cs.NumRows != meta.Rows {
		return nil, 0, 0, errf(path, "segment holds %d rows, manifest says %d", cs.NumRows, meta.Rows)
	}
	for _, f := range cs.Fields {
		z := zoneOfLaneCol(cs.Col(f), cs.NumRows)
		mz, _ := meta.Zone(f) // zero zone when the manifest lists no rows
		if !zoneEqual(z, mz) {
			return nil, 0, 0, errf(path, "zone maps inconsistent with lane data")
		}
	}
	return cs, cs.MemBytes(), blocks, nil
}

// zoneOfLaneCol recomputes the zone map of one projected lane column; lane
// values follow lookup semantics exactly like ZoneMaps' per-row rule, so a
// clean decode reproduces the manifest entry bit for bit.
func zoneOfLaneCol(c *vector.Col, rows int) ZoneMap {
	var z ZoneMap
	for i := 0; i < rows; i++ {
		if it := c.Item(i); it != nil {
			z.observe(it)
		}
	}
	return z
}

// OpenDataset loads and strictly validates the segment directory of
// source without re-ingesting: a missing or unreadable manifest, a
// version mismatch, or a source whose content hash no longer matches the
// manifest (stale segments) each return a structured error.
func OpenDataset(source string) (*Dataset, error) {
	dir := Dir(source)
	mpath := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(mpath)
	if err != nil {
		return nil, errf(mpath, "read manifest: %v", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, errf(mpath, "parse manifest: %v", err)
	}
	if m.Version != Version {
		return nil, errf(mpath, "manifest version %d, engine supports %d", m.Version, Version)
	}
	hash, bytes, err := SourceHash(source)
	if err != nil {
		return nil, err
	}
	if hash != m.SourceHash || bytes != m.SourceBytes {
		return nil, errf(mpath, "stale segments: source content hash changed since ingest (re-ingest required)")
	}
	return &Dataset{Source: source, Dir: dir, Manifest: m}, nil
}

// SourceHash fingerprints a JSON-lines source (file or directory of part
// files): the sha256 over every data file's name and bytes in scan order,
// plus the total byte count.
func SourceHash(source string) (string, int64, error) {
	splits, err := dfs.ListSplits(source, 1<<62)
	if err != nil {
		return "", 0, errf(source, "hash: %v", err)
	}
	h := sha256.New()
	var total int64
	for _, sp := range splits {
		io.WriteString(h, filepath.Base(sp.Path))
		h.Write([]byte{0})
		f, err := os.Open(sp.Path)
		if err != nil {
			return "", 0, errf(sp.Path, "hash: %v", err)
		}
		n, err := io.Copy(h, f)
		f.Close()
		if err != nil {
			return "", 0, errf(sp.Path, "hash: %v", err)
		}
		total += n
	}
	return hex.EncodeToString(h.Sum(nil)), total, nil
}

// Ingest builds (or rebuilds) the segment dataset of source: it scans the
// JSON lines in raw scan order, parses every line, and writes full
// segments of Rows rows (the final segment may be partial) plus the
// manifest into the sibling segments directory, atomically via a
// temporary directory. Any unparseable line aborts the ingest — such a
// source stays on the raw scan path, which reports the same parse error
// the tuple backend would.
func Ingest(source string) (retErr error) {
	hash, bytes, err := SourceHash(source)
	if err != nil {
		return err
	}
	splits, err := dfs.ListSplits(source, 1<<62)
	if err != nil {
		return errf(source, "ingest: %v", err)
	}
	dir := Dir(source)
	tmp, err := os.MkdirTemp(filepath.Dir(dir), filepath.Base(dir)+".tmp-*")
	if err != nil {
		return errf(source, "ingest: %v", err)
	}
	defer func() {
		if retErr != nil {
			os.RemoveAll(tmp)
		}
	}()
	// MkdirTemp creates 0700 staging directories; the rename below makes
	// this the final segments directory, which must stay as readable as
	// ordinary created files (umask applies), not private to the ingesting
	// user.
	if err := os.Chmod(tmp, 0o755); err != nil {
		return errf(source, "ingest: %v", err)
	}
	m := Manifest{Version: Version, SourceHash: hash, SourceBytes: bytes}
	var pending []item.Item
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		data, err := Encode(pending)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("seg-%05d.rseg", len(m.Segments))
		if err := os.WriteFile(filepath.Join(tmp, name), data, 0o644); err != nil {
			return errf(source, "ingest: %v", err)
		}
		m.Segments = append(m.Segments, Meta{
			File:  name,
			Rows:  len(pending),
			Bytes: int64(len(data)),
			Cols:  ZoneMaps(pending),
		})
		m.Rows += int64(len(pending))
		pending = pending[:0]
		return nil
	}
	for _, sp := range splits {
		err := dfs.ReadLines(sp, nil, func(line []byte) error {
			it, perr := jparse.Parse(line)
			if perr != nil {
				return errf(sp.Path, "ingest: %v", perr)
			}
			pending = append(pending, it)
			if len(pending) == Rows {
				return flush()
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	mdata, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return errf(source, "ingest: %v", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, ManifestName), mdata, 0o644); err != nil {
		return errf(source, "ingest: %v", err)
	}
	if err := os.RemoveAll(dir); err != nil {
		return errf(source, "ingest: %v", err)
	}
	if err := os.Rename(tmp, dir); err != nil {
		return errf(source, "ingest: %v", err)
	}
	return nil
}

// Store serves segment datasets to the engine: one validated (and, when
// needed, ingested) Dataset per source path, sharing one byte-bounded LRU
// buffer pool of decoded segments across all of them.
type Store struct {
	pool *pool

	mu       sync.Mutex
	datasets map[string]*datasetEntry
	rebuilds sync.WaitGroup

	// OnReingest, when set before the store serves queries, is called once
	// per background re-ingest that completed successfully (metrics hook).
	OnReingest func()
}

type datasetEntry struct {
	mu         sync.Mutex
	resolved   bool
	rebuilding bool
	ds         *Dataset
	err        error
}

// DefaultCacheBytes is the buffer-pool budget when none is configured.
const DefaultCacheBytes = 64 << 20

// NewStore creates a store whose buffer pool holds about cacheBytes of
// segment files decoded (cacheBytes <= 0 uses DefaultCacheBytes).
func NewStore(cacheBytes int64) *Store {
	if cacheBytes <= 0 {
		cacheBytes = DefaultCacheBytes
	}
	return &Store{pool: newPool(cacheBytes), datasets: map[string]*datasetEntry{}}
}

// Open returns the segment dataset of the JSON-lines source at path. A
// source never ingested before (no manifest) ingests synchronously — the
// first touch pays the build, exactly once per store. A source whose
// existing segments are stale (the content hash changed since ingest) or
// from an older format version is served as (nil, nil) — the raw scan —
// while a single background goroutine per path rebuilds the segments and
// swaps them in atomically; later Opens see the fresh dataset. A nil
// Dataset with a nil error therefore means "scan raw for now"; a non-nil
// error means the source is not segmentable at all (for example, a line
// fails to parse) and the raw scan will report the identical error the
// tuple backend would.
func (s *Store) Open(path string) (*Dataset, error) {
	s.mu.Lock()
	e := s.datasets[path]
	if e == nil {
		e = &datasetEntry{}
		s.datasets[path] = e
	}
	s.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.resolved || e.rebuilding {
		return e.ds, e.err
	}
	ds, err := OpenDataset(path)
	if err == nil {
		ds.pool = s.pool
		e.ds, e.resolved = ds, true
		return ds, nil
	}
	if _, statErr := os.Stat(filepath.Join(Dir(path), ManifestName)); statErr != nil {
		// First touch: no segments exist yet. Build them synchronously so
		// the very first scan already reads lanes, not JSON.
		if err := s.ingestLocked(path, e); err != nil {
			return nil, err
		}
		return e.ds, nil
	}
	// A manifest exists but refused to open — stale content hash, older
	// format version, or corruption. Serve the raw scan immediately and
	// rebuild in the background, single-flight per path.
	e.rebuilding = true
	s.rebuilds.Add(1)
	go s.rebuild(path, e)
	return nil, nil
}

// ingestLocked ingests path and resolves e; the caller holds e.mu.
func (s *Store) ingestLocked(path string, e *datasetEntry) error {
	if err := Ingest(path); err != nil {
		e.err, e.resolved = err, true
		return err
	}
	ds, err := OpenDataset(path)
	if err != nil {
		e.err, e.resolved = err, true
		return err
	}
	ds.pool = s.pool
	e.ds, e.resolved = ds, true
	return nil
}

// rebuild re-ingests a stale source off the query path and swaps the new
// dataset in. On failure the entry resolves to the error: scans keep
// falling back to raw lines, which report the same source problem.
func (s *Store) rebuild(path string, e *datasetEntry) {
	defer s.rebuilds.Done()
	err := Ingest(path)
	var ds *Dataset
	if err == nil {
		ds, err = OpenDataset(path)
	}
	e.mu.Lock()
	e.rebuilding = false
	e.resolved = true
	if err != nil {
		e.err = err
	} else {
		ds.pool = s.pool
		e.ds = ds
	}
	e.mu.Unlock()
	if err == nil && s.OnReingest != nil {
		s.OnReingest()
	}
}

// WaitRebuilds blocks until every background re-ingest started so far has
// settled. It exists for tests and orderly shutdown.
func (s *Store) WaitRebuilds() { s.rebuilds.Wait() }

// --- buffer pool: byte-bounded LRU of decoded segments ---

// pool mirrors the server's compiled-plan cache: a doubly linked list in
// recency order plus an index, with per-entry sync.Once loading outside
// the lock (concurrent fetchers of one segment decode it once) and
// eviction that never removes the entry just inserted.
type pool struct {
	mu       sync.Mutex
	capBytes int64
	bytes    int64
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
}

type poolEntry struct {
	key  string
	cost int64

	once   sync.Once
	val    any
	actual int64
	blocks int
	err    error
}

func newPool(capBytes int64) *pool {
	return &pool{capBytes: capBytes, order: list.New(), entries: map[string]*list.Element{}}
}

// get returns the decoded value under key — item rows or a projected
// ColumnSet — loading it at most once per residency. The loader reports
// the bytes the value actually pins in memory, which settles the entry's
// provisional (file-size) cost: decoded item rows can cost several times
// the on-disk size, a narrow column projection far less. coldBlocks is
// non-zero only for the caller whose load actually ran — the one that must
// charge the simulated I/O. A failed load is returned to every waiter but
// never cached: the entry is dropped, so the next get retries instead of
// replaying a possibly transient error until eviction.
func (p *pool) get(key string, cost int64, load func() (any, int64, int, error)) (any, int, error) {
	p.mu.Lock()
	el, ok := p.entries[key]
	if ok {
		p.order.MoveToFront(el)
	} else {
		e := &poolEntry{key: key, cost: cost}
		el = p.order.PushFront(e)
		p.entries[key] = el
		p.bytes += cost
		p.evictOver(el)
	}
	e := el.Value.(*poolEntry)
	p.mu.Unlock()
	var loaded bool
	e.once.Do(func() {
		e.val, e.actual, e.blocks, e.err = load()
		loaded = true
	})
	if !loaded {
		return e.val, 0, e.err
	}
	// The loading caller settles the entry's pool accounting: drop it on
	// error, re-cost to the loader-reported in-memory bytes on success.
	p.mu.Lock()
	if cur, ok := p.entries[key]; ok && cur == el {
		if e.err != nil {
			p.order.Remove(el)
			delete(p.entries, key)
			p.bytes -= e.cost
		} else if e.actual > 0 && e.actual != e.cost {
			p.bytes += e.actual - e.cost
			e.cost = e.actual
			p.evictOver(el)
		}
	}
	p.mu.Unlock()
	return e.val, e.blocks, e.err
}

// evictOver removes LRU entries until the pool fits its budget, never
// removing keep (the entry just inserted or re-costed). Callers hold p.mu.
func (p *pool) evictOver(keep *list.Element) {
	for p.bytes > p.capBytes && p.order.Len() > 1 {
		back := p.order.Back()
		if back == keep {
			return
		}
		victim := back.Value.(*poolEntry)
		p.order.Remove(back)
		delete(p.entries, victim.key)
		p.bytes -= victim.cost
	}
}

// decodedCost estimates the in-memory bytes a decoded segment pins, so
// the pool budget bounds real memory rather than the (much smaller)
// on-disk file size. Object key bytes are shared with the segment's
// column dictionary, so keys count header-only.
func decodedCost(rows []item.Item) int64 {
	n := int64(len(rows)) * ifaceBytes
	for _, r := range rows {
		n += itemCost(r)
	}
	return n
}

const (
	ifaceBytes  = 16 // interface header
	stringBytes = 16 // string header
)

func itemCost(v item.Item) int64 {
	switch t := v.(type) {
	case nil, item.Null, item.Bool:
		return 0 // value lives in (or beside) the interface word
	case item.Int, item.Double:
		return 8
	case item.Str:
		return stringBytes + int64(len(t))
	case item.Dec:
		rat := t.Rat()
		return 96 + int64(len(rat.Num().Bits())+len(rat.Denom().Bits()))*8
	case *item.Array:
		n := int64(48) // Array struct + member slice header
		for _, m := range t.Members() {
			n += ifaceBytes + itemCost(m)
		}
		return n
	case *item.Object:
		n := int64(64) // Object struct + two slice headers
		for i := 0; i < t.Len(); i++ {
			n += stringBytes + ifaceBytes + itemCost(t.ValueAt(i))
		}
		if t.Len() > 8 {
			n += int64(t.Len()) * 48 // key lookup index
		}
		return n
	default:
		return 64
	}
}

// Package segment is the persistent columnar storage layer: an immutable
// segment format ingested once from a JSON-lines collection and stored in
// a sibling "<path>.segments" directory, content-hash validated against
// the source. Each segment holds up to Rows rows decomposed into typed
// per-column lanes (int64 / float64 / string / tag, with an exact item
// overflow lane for nested and decimal values), mirroring the
// internal/vector batch layout, plus per-column zone maps (min/max sort
// key, null and missing counts) recorded in the dataset manifest. A
// byte-bounded LRU buffer pool serves decoded segments to the morsel
// scanner, so hot scans never re-parse JSON, and the zone maps let
// prunable predicates skip whole segments before any row is touched.
package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/big"
	"sort"

	"rumble/internal/item"
	"rumble/internal/vector"
)

// Rows is the row capacity of a full segment: four vector batches, so a
// segment always splits into whole BatchSize morsels (the final segment
// of a dataset may be partial).
const Rows = 4096

// Magic opens every segment file.
const Magic = "RSEG"

// Version is the current format version. Version 2 added the per-segment
// string dictionary (tagString lane values are codes into a sorted string
// table), and a byte-length prefix on every column's lane block so a
// projecting reader skips untouched columns in O(1). Version 1 manifests
// fail the open-time version check, which re-ingests the source.
const Version = 2

// Column value tags of the dense per-column tag lane. The layout mirrors
// internal/vector's column tags, with one extra tag (tagDec) so decimal
// values round-trip exactly instead of through their float64 image.
const (
	tagAbsent byte = iota
	tagNull
	tagFalse
	tagTrue
	tagInt
	tagDouble
	tagString
	tagItem // nested object/array, stored in the exact item encoding
	tagDec  // decimal, stored as a big.Rat string
	tagMax
)

// shape markers: a row is either a column-id list over the dictionary
// (ordinary object row) or an overflow row carrying the exact item
// encoding of the whole value (non-object rows and duplicate-key
// objects, which the dictionary cannot express).
const shapeOverflow = 0

// Error is a structured storage-layer error. Every corruption the decoder
// detects — truncation, checksum mismatch, lane inconsistencies, zone
// maps that disagree with the data — surfaces as one of these, never a
// panic or silently wrong rows.
type Error struct {
	Path string // file the error was detected in ("" when not file-bound)
	Msg  string
}

func (e *Error) Error() string {
	if e.Path == "" {
		return "segment: " + e.Msg
	}
	return fmt.Sprintf("segment: %s: %s", e.Path, e.Msg)
}

func errf(path, format string, args ...any) error {
	return &Error{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Encode serializes rows into one segment's byte image. Rows must not be
// longer than the segment capacity.
func Encode(rows []item.Item) ([]byte, error) {
	if len(rows) > Rows {
		return nil, errf("", "encode: %d rows exceed segment capacity %d", len(rows), Rows)
	}
	// Column dictionary in first-seen order, so reconstruction preserves
	// the original key order of every object row.
	var cols []string
	colID := map[string]int{}
	type rowShape struct {
		overflow []byte // exact item encoding when not a plain object
		ids      []int
	}
	shapes := make([]rowShape, len(rows))
	// The per-segment string dictionary: every top-level string a column
	// lane (or an overflow object row's field, which the projecting decoder
	// serves through the same code space) can hold, sorted so comparison
	// kernels can rank a literal against it by binary search.
	strSet := map[string]struct{}{}
	for ri, r := range rows {
		o, ok := r.(*item.Object)
		if !ok || hasDupKeys(o) {
			shapes[ri].overflow = appendValue(nil, r)
			if ok {
				// A dup-key object row still answers field lookups; its
				// string fields must resolve through the dictionary too.
				for i := 0; i < o.Len(); i++ {
					if s, isStr := o.ValueAt(i).(item.Str); isStr {
						strSet[string(s)] = struct{}{}
					}
				}
			}
			continue
		}
		ids := make([]int, o.Len())
		for ki, k := range o.Keys() {
			id, seen := colID[k]
			if !seen {
				id = len(cols)
				colID[k] = id
				cols = append(cols, k)
			}
			ids[ki] = id
			if s, isStr := o.ValueAt(ki).(item.Str); isStr {
				strSet[string(s)] = struct{}{}
			}
		}
		shapes[ri].ids = ids
	}
	table := make([]string, 0, len(strSet))
	//rumble:nondeterministic-ok the table is sorted immediately below
	for s := range strSet {
		table = append(table, s)
	}
	sort.Strings(table)
	strCode := make(map[string]uint64, len(table))
	for i, s := range table {
		strCode[s] = uint64(i)
	}

	var payload []byte
	payload = appendUvarint(payload, uint64(len(cols)))
	for _, c := range cols {
		payload = appendString(payload, c)
	}
	payload = appendUvarint(payload, uint64(len(table)))
	for _, s := range table {
		payload = appendString(payload, s)
	}
	for ri := range shapes {
		if shapes[ri].overflow != nil {
			payload = appendUvarint(payload, shapeOverflow)
			payload = appendUvarint(payload, uint64(len(shapes[ri].overflow)))
			payload = append(payload, shapes[ri].overflow...)
			continue
		}
		payload = appendUvarint(payload, uint64(len(shapes[ri].ids)+1))
		for _, id := range shapes[ri].ids {
			payload = appendUvarint(payload, uint64(id))
		}
	}
	// Typed lanes, one column at a time: each column's block is its dense
	// tag lane followed by the sparse value lane in row order, prefixed by
	// the block's byte length so a projecting reader skips a whole column
	// without parsing it.
	for ci := range cols {
		tags := make([]byte, len(rows))
		var values []byte
		for ri, r := range rows {
			o, ok := r.(*item.Object)
			if !ok || shapes[ri].overflow != nil {
				// Overflow rows reconstruct wholesale; non-objects yield
				// absent for every column, exactly like vector.Lookup.
				continue
			}
			v, present := o.Get(cols[ci])
			if !present {
				continue
			}
			tag, val := encodeLaneValue(v, strCode)
			tags[ri] = tag
			values = append(values, val...)
		}
		payload = appendUvarint(payload, uint64(len(tags)+len(values)))
		payload = append(payload, tags...)
		payload = append(payload, values...)
	}

	out := make([]byte, 0, len(Magic)+1+4+4+4+len(payload))
	out = append(out, Magic...)
	out = append(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(rows)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(cols)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = append(out, payload...)
	return out, nil
}

// encodeLaneValue encodes one column value into its lane tag and value
// bytes (empty for tags whose value lives in the tag itself). Strings
// encode as codes into the segment's sorted dictionary.
func encodeLaneValue(v item.Item, strCode map[string]uint64) (byte, []byte) {
	switch t := v.(type) {
	case item.Null:
		return tagNull, nil
	case item.Bool:
		if bool(t) {
			return tagTrue, nil
		}
		return tagFalse, nil
	case item.Int:
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], int64(t))
		return tagInt, buf[:n]
	case item.Double:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(t)))
		return tagDouble, buf[:]
	case item.Str:
		return tagString, appendUvarint(nil, strCode[string(t)])
	case item.Dec:
		return tagDec, appendString(nil, t.Rat().RatString())
	default:
		return tagItem, appendSized(nil, appendValue(nil, v))
	}
}

func hasDupKeys(o *item.Object) bool {
	keys := o.Keys()
	if len(keys) < 2 {
		return false
	}
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}

// Decoded is one segment's decoded contents: the materialized rows and
// the column dictionary.
type Decoded struct {
	Rows []item.Item
	Cols []string
}

// rowShape is one decoded row's shape: either an overflow item (the whole
// value, for non-object and duplicate-key rows) or a column-id list.
type rowShape struct {
	overflow item.Item
	ids      []int
}

// parsed is the common prefix of a segment image — header, column names,
// string dictionary, row shapes — with the reader positioned at the first
// column lane block. Both decode paths (item rows and projected vector
// lanes) start from it.
type parsed struct {
	rows   int
	cols   []string
	table  []string
	shapes []rowShape
	r      *reader
}

// parseSegment validates the header and CRC and parses everything up to
// the column lane blocks. Every malformation returns a structured error;
// it never panics on corrupted input (FuzzSegmentDecode enforces this).
func parseSegment(path string, data []byte) (*parsed, error) {
	head := len(Magic) + 1 + 4 + 4 + 4
	if len(data) < head {
		return nil, errf(path, "truncated header: %d bytes", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, errf(path, "bad magic %q", data[:len(Magic)])
	}
	if v := data[len(Magic)]; v != Version {
		return nil, errf(path, "unsupported version %d", v)
	}
	rows := int(binary.LittleEndian.Uint32(data[len(Magic)+1:]))
	ncols := int(binary.LittleEndian.Uint32(data[len(Magic)+5:]))
	sum := binary.LittleEndian.Uint32(data[len(Magic)+9:])
	payload := data[head:]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, errf(path, "checksum mismatch: header %08x, payload %08x", sum, got)
	}
	if rows < 0 || rows > Rows {
		return nil, errf(path, "row count %d out of range", rows)
	}
	// Every dictionary entry costs at least one payload byte (its length
	// uvarint), so the column count can never exceed the payload size. This
	// is the only header bound the format actually implies — anything
	// tighter falsely rejects sparse/wide data (a short tail segment with
	// many distinct keys). The CRC above guards corruption and the
	// dictionary loop below is bounds-checked.
	if ncols < 0 || ncols > len(payload) {
		return nil, errf(path, "column count %d exceeds %d payload bytes", ncols, len(payload))
	}
	r := &reader{path: path, data: payload}
	gotCols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if int(gotCols) != ncols {
		return nil, errf(path, "dictionary lists %d columns, header says %d", gotCols, ncols)
	}
	cols := make([]string, ncols)
	for i := range cols {
		if cols[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	nstr, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Same bound as the column dictionary: every entry costs at least its
	// length byte.
	if nstr > uint64(len(payload)) {
		return nil, errf(path, "string table lists %d entries in %d payload bytes", nstr, len(payload))
	}
	table := make([]string, nstr)
	for i := range table {
		if table[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	shapes := make([]rowShape, rows)
	for ri := range shapes {
		marker, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if marker == shapeOverflow {
			raw, err := r.sized()
			if err != nil {
				return nil, err
			}
			vr := &reader{path: path, data: raw}
			v, err := vr.value(0)
			if err != nil {
				return nil, err
			}
			if vr.off != len(vr.data) {
				return nil, errf(path, "overflow row %d: %d trailing bytes", ri, len(vr.data)-vr.off)
			}
			shapes[ri].overflow = v
			continue
		}
		n := int(marker - 1)
		if n > ncols*4+16 {
			return nil, errf(path, "row %d: implausible column list length %d", ri, n)
		}
		ids := make([]int, n)
		for i := range ids {
			id, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if int(id) >= ncols {
				return nil, errf(path, "row %d: column id %d out of range", ri, id)
			}
			ids[i] = int(id)
		}
		shapes[ri].ids = ids
	}
	return &parsed{rows: rows, cols: cols, table: table, shapes: shapes, r: r}, nil
}

// laneBlock reads one column's length-prefixed lane block and returns a
// bounded reader over it, or skips it entirely when parse is false.
func (p *parsed) laneBlock(col string, parse bool) (*reader, error) {
	n, err := p.r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p.r.data)-p.r.off) {
		return nil, errf(p.r.path, "column %q: lane block length %d overruns buffer", col, n)
	}
	block := p.r.data[p.r.off : p.r.off+int(n)]
	p.r.off += int(n)
	if !parse {
		return nil, nil
	}
	return &reader{path: p.r.path, data: block}, nil
}

// Decode parses a segment byte image back into rows. Every malformation —
// truncation, a flipped bit anywhere in the payload (checksum), invalid
// lane data — returns a structured error; Decode never panics on
// corrupted input (FuzzSegmentDecode enforces this).
func Decode(path string, data []byte) (*Decoded, error) {
	p, err := parseSegment(path, data)
	if err != nil {
		return nil, err
	}
	rows, cols, r := p.rows, p.cols, p.r
	// Lanes: decode each column into a full-length item lane (nil = absent).
	lanes := make([][]item.Item, len(cols))
	for ci := range cols {
		lr, err := p.laneBlock(cols[ci], true)
		if err != nil {
			return nil, err
		}
		if len(lr.data) < rows {
			return nil, errf(path, "column %q: truncated tag lane", cols[ci])
		}
		tags := lr.data[:rows]
		lr.off = rows
		lane := make([]item.Item, rows)
		for ri := 0; ri < rows; ri++ {
			switch tags[ri] {
			case tagAbsent:
			case tagNull:
				lane[ri] = item.Null{}
			case tagFalse:
				lane[ri] = item.Bool(false)
			case tagTrue:
				lane[ri] = item.Bool(true)
			case tagInt:
				v, err := lr.varint()
				if err != nil {
					return nil, err
				}
				lane[ri] = item.Int(v)
			case tagDouble:
				if len(lr.data)-lr.off < 8 {
					return nil, errf(path, "column %q: truncated double lane", cols[ci])
				}
				lane[ri] = item.Double(math.Float64frombits(binary.LittleEndian.Uint64(lr.data[lr.off:])))
				lr.off += 8
			case tagString:
				code, err := lr.uvarint()
				if err != nil {
					return nil, err
				}
				if code >= uint64(len(p.table)) {
					return nil, errf(path, "column %q row %d: string code %d out of range", cols[ci], ri, code)
				}
				lane[ri] = item.Str(p.table[code])
			case tagDec:
				s, err := lr.str()
				if err != nil {
					return nil, err
				}
				rat, ok := new(big.Rat).SetString(s)
				if !ok {
					return nil, errf(path, "column %q: invalid decimal %q", cols[ci], s)
				}
				lane[ri] = item.NewDecimal(rat)
			case tagItem:
				raw, err := lr.sized()
				if err != nil {
					return nil, err
				}
				vr := &reader{path: path, data: raw}
				v, err := vr.value(0)
				if err != nil {
					return nil, err
				}
				lane[ri] = v
			default:
				return nil, errf(path, "column %q row %d: invalid lane tag %d", cols[ci], ri, tags[ri])
			}
		}
		if lr.off != len(lr.data) {
			return nil, errf(path, "column %q: %d trailing lane bytes", cols[ci], len(lr.data)-lr.off)
		}
		lanes[ci] = lane
	}
	if r.off != len(r.data) {
		return nil, errf(path, "%d trailing payload bytes", len(r.data)-r.off)
	}
	out := make([]item.Item, rows)
	for ri := range p.shapes {
		if p.shapes[ri].overflow != nil {
			out[ri] = p.shapes[ri].overflow
			continue
		}
		keys := make([]string, len(p.shapes[ri].ids))
		values := make([]item.Item, len(p.shapes[ri].ids))
		for i, id := range p.shapes[ri].ids {
			keys[i] = cols[id]
			v := lanes[id][ri]
			if v == nil {
				return nil, errf(path, "row %d: shape lists column %q but its lane is absent", ri, cols[id])
			}
			values[i] = v
		}
		out[ri] = item.NewObject(keys, values)
	}
	return &Decoded{Rows: out, Cols: cols}, nil
}

// ColumnSet is the batch-native decode of one segment restricted to a set
// of projected fields: one full-segment-length vector.Col per field, built
// straight from the tag and value lanes without materializing row items.
// String lanes stay dictionary-encoded (codes in the Ints lane, the shared
// sorted table in Col.Dict). Overflow rows — non-objects, duplicate-key
// objects — contribute their field values through the same item lookup
// rule the row materialization uses, so a ColumnSet column is row-for-row
// identical to vector.Lookup over the decoded items.
type ColumnSet struct {
	NumRows int
	Fields  []string // projected fields, sorted unique
	Dict    []string // the segment string table
	cols    map[string]*vector.Col
}

// Col returns the lane column of a projected field (never nil for a field
// that was requested; all-absent when no row of the segment has it).
func (cs *ColumnSet) Col(name string) *vector.Col { return cs.cols[name] }

// MemBytes estimates the in-memory bytes the column set pins — the typed
// lanes, the dictionary strings, and any overflow items — so the buffer
// pool budget bounds real memory under column projection.
func (cs *ColumnSet) MemBytes() int64 {
	n := int64(0)
	for _, s := range cs.Dict {
		n += stringBytes + int64(len(s))
	}
	for _, f := range cs.Fields {
		c := cs.cols[f]
		n += int64(len(c.Tags)) * (1 + 8 + 8 + stringBytes) // tag+int+num+str headers
		for _, s := range c.Strs {
			n += int64(len(s))
		}
		for _, it := range c.Items {
			n += ifaceBytes
			if it != nil {
				n += itemCost(it)
			}
		}
	}
	return n
}

// newLaneCol returns a full-length, all-absent column sharing the segment
// dictionary.
func newLaneCol(rows int, dict []string) *vector.Col {
	return &vector.Col{
		Tags: make([]vector.Tag, rows),
		Ints: make([]int64, rows),
		Nums: make([]float64, rows),
		Strs: make([]string, rows),
		Dict: dict,
	}
}

func putLaneItem(c *vector.Col, ri int, v item.Item) {
	c.Tags[ri] = vector.TagItem
	for len(c.Items) <= ri {
		c.Items = append(c.Items, nil)
	}
	c.Items[ri] = v
}

// materializeStrings converts a dictionary column to plain strings: every
// code row resolves through the dictionary into the Strs lane. Needed only
// when an overflow row carries a string the table does not list (possible
// in hand-crafted images; Encode always lists them).
func materializeStrings(c *vector.Col) {
	for i, tg := range c.Tags {
		if tg == vector.TagString {
			c.Strs[i] = c.Dict[c.Ints[i]]
			c.Ints[i] = 0
		}
	}
	c.Dict = nil
}

// setLaneValue overwrites row ri of c with an overflow row's field value,
// routing it exactly as Col.AppendItem would.
func setLaneValue(c *vector.Col, ri int, v item.Item) {
	switch t := v.(type) {
	case item.Null:
		c.Tags[ri] = vector.TagNull
	case item.Bool:
		if t {
			c.Tags[ri] = vector.TagTrue
		} else {
			c.Tags[ri] = vector.TagFalse
		}
	case item.Int:
		c.Tags[ri] = vector.TagInt
		c.Ints[ri] = int64(t)
	case item.Double:
		c.Tags[ri] = vector.TagDouble
		c.Nums[ri] = float64(t)
	case item.Str:
		if c.Dict != nil {
			i := sort.SearchStrings(c.Dict, string(t))
			if i < len(c.Dict) && c.Dict[i] == string(t) {
				c.Tags[ri] = vector.TagString
				c.Ints[ri] = int64(i)
				return
			}
			materializeStrings(c)
		}
		c.Tags[ri] = vector.TagString
		c.Strs[ri] = string(t)
	default:
		putLaneItem(c, ri, v)
	}
}

// decodeLaneCol parses one column's lane block into a vector column:
// dense tags first, then the sparse value lane, with string values as
// dictionary codes.
func decodeLaneCol(path, name string, lr *reader, rows int, table []string) (*vector.Col, error) {
	if len(lr.data) < rows {
		return nil, errf(path, "column %q: truncated tag lane", name)
	}
	tags := lr.data[:rows]
	lr.off = rows
	c := newLaneCol(rows, table)
	for ri := 0; ri < rows; ri++ {
		switch tags[ri] {
		case tagAbsent:
		case tagNull:
			c.Tags[ri] = vector.TagNull
		case tagFalse:
			c.Tags[ri] = vector.TagFalse
		case tagTrue:
			c.Tags[ri] = vector.TagTrue
		case tagInt:
			v, err := lr.varint()
			if err != nil {
				return nil, err
			}
			c.Tags[ri] = vector.TagInt
			c.Ints[ri] = v
		case tagDouble:
			if len(lr.data)-lr.off < 8 {
				return nil, errf(path, "column %q: truncated double lane", name)
			}
			c.Tags[ri] = vector.TagDouble
			c.Nums[ri] = math.Float64frombits(binary.LittleEndian.Uint64(lr.data[lr.off:]))
			lr.off += 8
		case tagString:
			code, err := lr.uvarint()
			if err != nil {
				return nil, err
			}
			if code >= uint64(len(table)) {
				return nil, errf(path, "column %q row %d: string code %d out of range", name, ri, code)
			}
			c.Tags[ri] = vector.TagString
			c.Ints[ri] = int64(code)
		case tagDec:
			s, err := lr.str()
			if err != nil {
				return nil, err
			}
			rat, ok := new(big.Rat).SetString(s)
			if !ok {
				return nil, errf(path, "column %q: invalid decimal %q", name, s)
			}
			putLaneItem(c, ri, item.NewDecimal(rat))
		case tagItem:
			raw, err := lr.sized()
			if err != nil {
				return nil, err
			}
			vr := &reader{path: path, data: raw}
			v, err := vr.value(0)
			if err != nil {
				return nil, err
			}
			putLaneItem(c, ri, v)
		default:
			return nil, errf(path, "column %q row %d: invalid lane tag %d", name, ri, tags[ri])
		}
	}
	if lr.off != len(lr.data) {
		return nil, errf(path, "column %q: %d trailing lane bytes", name, len(lr.data)-lr.off)
	}
	return c, nil
}

// DecodeColumns parses a segment byte image into lane columns for the
// projected fields only: unprojected columns' lane blocks are skipped via
// their byte-length prefix without being parsed. The whole payload is
// still CRC-validated, and the same malformations Decode rejects surface
// as the same structured errors.
func DecodeColumns(path string, data []byte, fields []string) (*ColumnSet, error) {
	p, err := parseSegment(path, data)
	if err != nil {
		return nil, err
	}
	want := append([]string(nil), fields...)
	sort.Strings(want)
	uniq := want[:0]
	for i, f := range want {
		if i == 0 || f != want[i-1] {
			uniq = append(uniq, f)
		}
	}
	want = uniq
	wantSet := make(map[string]bool, len(want))
	for _, f := range want {
		wantSet[f] = true
	}
	cs := &ColumnSet{NumRows: p.rows, Fields: want, Dict: p.table, cols: make(map[string]*vector.Col, len(want))}
	for _, name := range p.cols {
		lr, err := p.laneBlock(name, wantSet[name])
		if err != nil {
			return nil, err
		}
		if lr == nil {
			continue
		}
		c, err := decodeLaneCol(path, name, lr, p.rows, p.table)
		if err != nil {
			return nil, err
		}
		cs.cols[name] = c
	}
	if p.r.off != len(p.r.data) {
		return nil, errf(path, "%d trailing payload bytes", len(p.r.data)-p.r.off)
	}
	// Fields no lane carries are still projected: all-absent columns, which
	// overflow rows below may populate.
	for _, f := range want {
		if cs.cols[f] == nil {
			cs.cols[f] = newLaneCol(p.rows, p.table)
		}
	}
	for ri := range p.shapes {
		v := p.shapes[ri].overflow
		if v == nil {
			continue
		}
		obj, ok := v.(*item.Object)
		if !ok {
			continue // non-object rows are absent in every column
		}
		for _, f := range want {
			if fv, found := obj.Get(f); found {
				setLaneValue(cs.cols[f], ri, fv)
			}
		}
	}
	return cs, nil
}

// --- exact item encoding (overflow rows and nested lane values) ---

// Value kind bytes of the exact item encoding.
const (
	ivNull byte = iota
	ivFalse
	ivTrue
	ivInt
	ivDouble
	ivString
	ivDec
	ivArray
	ivObject
)

// maxValueDepth bounds nesting when decoding untrusted bytes.
const maxValueDepth = 200

// appendValue appends the exact recursive encoding of v: unlike the
// canonical JSON rendering, decimals keep their full big.Rat value, so
// decode reproduces v bit for bit.
func appendValue(dst []byte, v item.Item) []byte {
	switch t := v.(type) {
	case item.Null:
		return append(dst, ivNull)
	case item.Bool:
		if bool(t) {
			return append(dst, ivTrue)
		}
		return append(dst, ivFalse)
	case item.Int:
		dst = append(dst, ivInt)
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], int64(t))
		return append(dst, buf[:n]...)
	case item.Double:
		dst = append(dst, ivDouble)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(t)))
		return append(dst, buf[:]...)
	case item.Str:
		dst = append(dst, ivString)
		return appendString(dst, string(t))
	case item.Dec:
		dst = append(dst, ivDec)
		return appendString(dst, t.Rat().RatString())
	case *item.Array:
		dst = append(dst, ivArray)
		dst = appendUvarint(dst, uint64(t.Len()))
		for i := 0; i < t.Len(); i++ {
			dst = appendValue(dst, t.Member(i))
		}
		return dst
	case *item.Object:
		dst = append(dst, ivObject)
		dst = appendUvarint(dst, uint64(t.Len()))
		for i, k := range t.Keys() {
			dst = appendString(dst, k)
			dst = appendValue(dst, t.ValueAt(i))
		}
		return dst
	default:
		// Unreachable for ingested data; keep encode total anyway.
		dst = append(dst, ivString)
		return appendString(dst, v.String())
	}
}

// reader is a bounds-checked cursor over untrusted bytes.
type reader struct {
	path string
	data []byte
	off  int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, errf(r.path, "invalid uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, errf(r.path, "invalid varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) str() (string, error) {
	b, err := r.sized()
	return string(b), err
}

func (r *reader) sized() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.off) {
		return nil, errf(r.path, "length %d overruns buffer at offset %d", n, r.off)
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) value(depth int) (item.Item, error) {
	if depth > maxValueDepth {
		return nil, errf(r.path, "value nesting exceeds %d", maxValueDepth)
	}
	if r.off >= len(r.data) {
		return nil, errf(r.path, "truncated value at offset %d", r.off)
	}
	kind := r.data[r.off]
	r.off++
	switch kind {
	case ivNull:
		return item.Null{}, nil
	case ivFalse:
		return item.Bool(false), nil
	case ivTrue:
		return item.Bool(true), nil
	case ivInt:
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return item.Int(v), nil
	case ivDouble:
		if len(r.data)-r.off < 8 {
			return nil, errf(r.path, "truncated double at offset %d", r.off)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
		r.off += 8
		return item.Double(v), nil
	case ivString:
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		return item.Str(s), nil
	case ivDec:
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		rat, ok := new(big.Rat).SetString(s)
		if !ok {
			return nil, errf(r.path, "invalid decimal %q", s)
		}
		return item.NewDecimal(rat), nil
	case ivArray:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(r.data)-r.off) {
			return nil, errf(r.path, "array length %d overruns buffer", n)
		}
		members := make([]item.Item, n)
		for i := range members {
			if members[i], err = r.value(depth + 1); err != nil {
				return nil, err
			}
		}
		return item.NewArray(members), nil
	case ivObject:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(r.data)-r.off) {
			return nil, errf(r.path, "object length %d overruns buffer", n)
		}
		keys := make([]string, n)
		values := make([]item.Item, n)
		for i := range keys {
			if keys[i], err = r.str(); err != nil {
				return nil, err
			}
			if values[i], err = r.value(depth + 1); err != nil {
				return nil, err
			}
		}
		return item.NewObject(keys, values), nil
	default:
		return nil, errf(r.path, "invalid value kind %d at offset %d", kind, r.off-1)
	}
}

func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendSized(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

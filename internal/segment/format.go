// Package segment is the persistent columnar storage layer: an immutable
// segment format ingested once from a JSON-lines collection and stored in
// a sibling "<path>.segments" directory, content-hash validated against
// the source. Each segment holds up to Rows rows decomposed into typed
// per-column lanes (int64 / float64 / string / tag, with an exact item
// overflow lane for nested and decimal values), mirroring the
// internal/vector batch layout, plus per-column zone maps (min/max sort
// key, null and missing counts) recorded in the dataset manifest. A
// byte-bounded LRU buffer pool serves decoded segments to the morsel
// scanner, so hot scans never re-parse JSON, and the zone maps let
// prunable predicates skip whole segments before any row is touched.
package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/big"

	"rumble/internal/item"
)

// Rows is the row capacity of a full segment: four vector batches, so a
// segment always splits into whole BatchSize morsels (the final segment
// of a dataset may be partial).
const Rows = 4096

// Magic opens every segment file.
const Magic = "RSEG"

// Version is the current format version.
const Version = 1

// Column value tags of the dense per-column tag lane. The layout mirrors
// internal/vector's column tags, with one extra tag (tagDec) so decimal
// values round-trip exactly instead of through their float64 image.
const (
	tagAbsent byte = iota
	tagNull
	tagFalse
	tagTrue
	tagInt
	tagDouble
	tagString
	tagItem // nested object/array, stored in the exact item encoding
	tagDec  // decimal, stored as a big.Rat string
	tagMax
)

// shape markers: a row is either a column-id list over the dictionary
// (ordinary object row) or an overflow row carrying the exact item
// encoding of the whole value (non-object rows and duplicate-key
// objects, which the dictionary cannot express).
const shapeOverflow = 0

// Error is a structured storage-layer error. Every corruption the decoder
// detects — truncation, checksum mismatch, lane inconsistencies, zone
// maps that disagree with the data — surfaces as one of these, never a
// panic or silently wrong rows.
type Error struct {
	Path string // file the error was detected in ("" when not file-bound)
	Msg  string
}

func (e *Error) Error() string {
	if e.Path == "" {
		return "segment: " + e.Msg
	}
	return fmt.Sprintf("segment: %s: %s", e.Path, e.Msg)
}

func errf(path, format string, args ...any) error {
	return &Error{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Encode serializes rows into one segment's byte image. Rows must not be
// longer than the segment capacity.
func Encode(rows []item.Item) ([]byte, error) {
	if len(rows) > Rows {
		return nil, errf("", "encode: %d rows exceed segment capacity %d", len(rows), Rows)
	}
	// Column dictionary in first-seen order, so reconstruction preserves
	// the original key order of every object row.
	var cols []string
	colID := map[string]int{}
	type rowShape struct {
		overflow []byte // exact item encoding when not a plain object
		ids      []int
	}
	shapes := make([]rowShape, len(rows))
	for ri, r := range rows {
		o, ok := r.(*item.Object)
		if !ok || hasDupKeys(o) {
			shapes[ri].overflow = appendValue(nil, r)
			continue
		}
		ids := make([]int, o.Len())
		for ki, k := range o.Keys() {
			id, seen := colID[k]
			if !seen {
				id = len(cols)
				colID[k] = id
				cols = append(cols, k)
			}
			ids[ki] = id
		}
		shapes[ri].ids = ids
	}

	var payload []byte
	payload = appendUvarint(payload, uint64(len(cols)))
	for _, c := range cols {
		payload = appendString(payload, c)
	}
	for ri := range shapes {
		if shapes[ri].overflow != nil {
			payload = appendUvarint(payload, shapeOverflow)
			payload = appendUvarint(payload, uint64(len(shapes[ri].overflow)))
			payload = append(payload, shapes[ri].overflow...)
			continue
		}
		payload = appendUvarint(payload, uint64(len(shapes[ri].ids)+1))
		for _, id := range shapes[ri].ids {
			payload = appendUvarint(payload, uint64(id))
		}
	}
	// Typed lanes, one column at a time: the dense tag lane first, then
	// the sparse value lanes in row order.
	for ci := range cols {
		tags := make([]byte, len(rows))
		var values []byte
		for ri, r := range rows {
			o, ok := r.(*item.Object)
			if !ok || shapes[ri].overflow != nil {
				// Overflow rows reconstruct wholesale; non-objects yield
				// absent for every column, exactly like vector.Lookup.
				continue
			}
			v, present := o.Get(cols[ci])
			if !present {
				continue
			}
			tag, val := encodeLaneValue(v)
			tags[ri] = tag
			values = append(values, val...)
		}
		payload = append(payload, tags...)
		payload = append(payload, values...)
	}

	out := make([]byte, 0, len(Magic)+1+4+4+4+len(payload))
	out = append(out, Magic...)
	out = append(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(rows)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(cols)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = append(out, payload...)
	return out, nil
}

// encodeLaneValue encodes one column value into its lane tag and value
// bytes (empty for tags whose value lives in the tag itself).
func encodeLaneValue(v item.Item) (byte, []byte) {
	switch t := v.(type) {
	case item.Null:
		return tagNull, nil
	case item.Bool:
		if bool(t) {
			return tagTrue, nil
		}
		return tagFalse, nil
	case item.Int:
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], int64(t))
		return tagInt, buf[:n]
	case item.Double:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(t)))
		return tagDouble, buf[:]
	case item.Str:
		return tagString, appendString(nil, string(t))
	case item.Dec:
		return tagDec, appendString(nil, t.Rat().RatString())
	default:
		return tagItem, appendSized(nil, appendValue(nil, v))
	}
}

func hasDupKeys(o *item.Object) bool {
	keys := o.Keys()
	if len(keys) < 2 {
		return false
	}
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}

// Decoded is one segment's decoded contents: the materialized rows and
// the column dictionary.
type Decoded struct {
	Rows []item.Item
	Cols []string
}

// Decode parses a segment byte image back into rows. Every malformation —
// truncation, a flipped bit anywhere in the payload (checksum), invalid
// lane data — returns a structured error; Decode never panics on
// corrupted input (FuzzSegmentDecode enforces this).
func Decode(path string, data []byte) (*Decoded, error) {
	head := len(Magic) + 1 + 4 + 4 + 4
	if len(data) < head {
		return nil, errf(path, "truncated header: %d bytes", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, errf(path, "bad magic %q", data[:len(Magic)])
	}
	if v := data[len(Magic)]; v != Version {
		return nil, errf(path, "unsupported version %d", v)
	}
	rows := int(binary.LittleEndian.Uint32(data[len(Magic)+1:]))
	ncols := int(binary.LittleEndian.Uint32(data[len(Magic)+5:]))
	sum := binary.LittleEndian.Uint32(data[len(Magic)+9:])
	payload := data[head:]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, errf(path, "checksum mismatch: header %08x, payload %08x", sum, got)
	}
	if rows < 0 || rows > Rows {
		return nil, errf(path, "row count %d out of range", rows)
	}
	// Every dictionary entry costs at least one payload byte (its length
	// uvarint), so the column count can never exceed the payload size. This
	// is the only header bound the format actually implies — anything
	// tighter falsely rejects sparse/wide data (a short tail segment with
	// many distinct keys). The CRC above guards corruption and the
	// dictionary loop below is bounds-checked.
	if ncols < 0 || ncols > len(payload) {
		return nil, errf(path, "column count %d exceeds %d payload bytes", ncols, len(payload))
	}
	r := &reader{path: path, data: payload}
	gotCols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if int(gotCols) != ncols {
		return nil, errf(path, "dictionary lists %d columns, header says %d", gotCols, ncols)
	}
	cols := make([]string, ncols)
	for i := range cols {
		if cols[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	type rowShape struct {
		overflow item.Item
		ids      []int
	}
	shapes := make([]rowShape, rows)
	for ri := range shapes {
		marker, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if marker == shapeOverflow {
			raw, err := r.sized()
			if err != nil {
				return nil, err
			}
			vr := &reader{path: path, data: raw}
			v, err := vr.value(0)
			if err != nil {
				return nil, err
			}
			if vr.off != len(vr.data) {
				return nil, errf(path, "overflow row %d: %d trailing bytes", ri, len(vr.data)-vr.off)
			}
			shapes[ri].overflow = v
			continue
		}
		n := int(marker - 1)
		if n > ncols*4+16 {
			return nil, errf(path, "row %d: implausible column list length %d", ri, n)
		}
		ids := make([]int, n)
		for i := range ids {
			id, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if int(id) >= ncols {
				return nil, errf(path, "row %d: column id %d out of range", ri, id)
			}
			ids[i] = int(id)
		}
		shapes[ri].ids = ids
	}
	// Lanes: decode each column into a full-length item lane (nil = absent).
	lanes := make([][]item.Item, ncols)
	for ci := 0; ci < ncols; ci++ {
		if len(r.data)-r.off < rows {
			return nil, errf(path, "column %q: truncated tag lane", cols[ci])
		}
		tags := r.data[r.off : r.off+rows]
		r.off += rows
		lane := make([]item.Item, rows)
		for ri := 0; ri < rows; ri++ {
			switch tags[ri] {
			case tagAbsent:
			case tagNull:
				lane[ri] = item.Null{}
			case tagFalse:
				lane[ri] = item.Bool(false)
			case tagTrue:
				lane[ri] = item.Bool(true)
			case tagInt:
				v, err := r.varint()
				if err != nil {
					return nil, err
				}
				lane[ri] = item.Int(v)
			case tagDouble:
				if len(r.data)-r.off < 8 {
					return nil, errf(path, "column %q: truncated double lane", cols[ci])
				}
				lane[ri] = item.Double(math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:])))
				r.off += 8
			case tagString:
				s, err := r.str()
				if err != nil {
					return nil, err
				}
				lane[ri] = item.Str(s)
			case tagDec:
				s, err := r.str()
				if err != nil {
					return nil, err
				}
				rat, ok := new(big.Rat).SetString(s)
				if !ok {
					return nil, errf(path, "column %q: invalid decimal %q", cols[ci], s)
				}
				lane[ri] = item.NewDecimal(rat)
			case tagItem:
				raw, err := r.sized()
				if err != nil {
					return nil, err
				}
				vr := &reader{path: path, data: raw}
				v, err := vr.value(0)
				if err != nil {
					return nil, err
				}
				lane[ri] = v
			default:
				return nil, errf(path, "column %q row %d: invalid lane tag %d", cols[ci], ri, tags[ri])
			}
		}
		lanes[ci] = lane
	}
	if r.off != len(r.data) {
		return nil, errf(path, "%d trailing payload bytes", len(r.data)-r.off)
	}
	out := make([]item.Item, rows)
	for ri := range shapes {
		if shapes[ri].overflow != nil {
			out[ri] = shapes[ri].overflow
			continue
		}
		keys := make([]string, len(shapes[ri].ids))
		values := make([]item.Item, len(shapes[ri].ids))
		for i, id := range shapes[ri].ids {
			keys[i] = cols[id]
			v := lanes[id][ri]
			if v == nil {
				return nil, errf(path, "row %d: shape lists column %q but its lane is absent", ri, cols[id])
			}
			values[i] = v
		}
		out[ri] = item.NewObject(keys, values)
	}
	return &Decoded{Rows: out, Cols: cols}, nil
}

// --- exact item encoding (overflow rows and nested lane values) ---

// Value kind bytes of the exact item encoding.
const (
	ivNull byte = iota
	ivFalse
	ivTrue
	ivInt
	ivDouble
	ivString
	ivDec
	ivArray
	ivObject
)

// maxValueDepth bounds nesting when decoding untrusted bytes.
const maxValueDepth = 200

// appendValue appends the exact recursive encoding of v: unlike the
// canonical JSON rendering, decimals keep their full big.Rat value, so
// decode reproduces v bit for bit.
func appendValue(dst []byte, v item.Item) []byte {
	switch t := v.(type) {
	case item.Null:
		return append(dst, ivNull)
	case item.Bool:
		if bool(t) {
			return append(dst, ivTrue)
		}
		return append(dst, ivFalse)
	case item.Int:
		dst = append(dst, ivInt)
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], int64(t))
		return append(dst, buf[:n]...)
	case item.Double:
		dst = append(dst, ivDouble)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(t)))
		return append(dst, buf[:]...)
	case item.Str:
		dst = append(dst, ivString)
		return appendString(dst, string(t))
	case item.Dec:
		dst = append(dst, ivDec)
		return appendString(dst, t.Rat().RatString())
	case *item.Array:
		dst = append(dst, ivArray)
		dst = appendUvarint(dst, uint64(t.Len()))
		for i := 0; i < t.Len(); i++ {
			dst = appendValue(dst, t.Member(i))
		}
		return dst
	case *item.Object:
		dst = append(dst, ivObject)
		dst = appendUvarint(dst, uint64(t.Len()))
		for i, k := range t.Keys() {
			dst = appendString(dst, k)
			dst = appendValue(dst, t.ValueAt(i))
		}
		return dst
	default:
		// Unreachable for ingested data; keep encode total anyway.
		dst = append(dst, ivString)
		return appendString(dst, v.String())
	}
}

// reader is a bounds-checked cursor over untrusted bytes.
type reader struct {
	path string
	data []byte
	off  int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, errf(r.path, "invalid uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, errf(r.path, "invalid varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) str() (string, error) {
	b, err := r.sized()
	return string(b), err
}

func (r *reader) sized() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.off) {
		return nil, errf(r.path, "length %d overruns buffer at offset %d", n, r.off)
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) value(depth int) (item.Item, error) {
	if depth > maxValueDepth {
		return nil, errf(r.path, "value nesting exceeds %d", maxValueDepth)
	}
	if r.off >= len(r.data) {
		return nil, errf(r.path, "truncated value at offset %d", r.off)
	}
	kind := r.data[r.off]
	r.off++
	switch kind {
	case ivNull:
		return item.Null{}, nil
	case ivFalse:
		return item.Bool(false), nil
	case ivTrue:
		return item.Bool(true), nil
	case ivInt:
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return item.Int(v), nil
	case ivDouble:
		if len(r.data)-r.off < 8 {
			return nil, errf(r.path, "truncated double at offset %d", r.off)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
		r.off += 8
		return item.Double(v), nil
	case ivString:
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		return item.Str(s), nil
	case ivDec:
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		rat, ok := new(big.Rat).SetString(s)
		if !ok {
			return nil, errf(r.path, "invalid decimal %q", s)
		}
		return item.NewDecimal(rat), nil
	case ivArray:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(r.data)-r.off) {
			return nil, errf(r.path, "array length %d overruns buffer", n)
		}
		members := make([]item.Item, n)
		for i := range members {
			if members[i], err = r.value(depth + 1); err != nil {
				return nil, err
			}
		}
		return item.NewArray(members), nil
	case ivObject:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(r.data)-r.off) {
			return nil, errf(r.path, "object length %d overruns buffer", n)
		}
		keys := make([]string, n)
		values := make([]item.Item, n)
		for i := range keys {
			if keys[i], err = r.str(); err != nil {
				return nil, err
			}
			if values[i], err = r.value(depth + 1); err != nil {
				return nil, err
			}
		}
		return item.NewObject(keys, values), nil
	default:
		return nil, errf(r.path, "invalid value kind %d at offset %d", kind, r.off-1)
	}
}

func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendSized(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

package segment

import (
	"math"
	"sort"

	"rumble/internal/item"
)

// Column kind bits of a zone map: which value kinds the column's present
// rows hold. The pruning rules consult them to decide when a predicate
// can neither error nor select a row anywhere in the segment.
const (
	KindNull uint32 = 1 << iota
	KindFalse
	KindTrue
	KindInt
	KindDouble
	KindDec
	KindString
	KindItem // nested object or array (no sort key)
)

// Key is the JSON-stable rendering of an item.SortKey: the float64 column
// is stored as its IEEE bits and the string column as bytes (base64 in
// JSON), so NaN, -0.0 and non-UTF-8 survive the manifest round trip.
type Key struct {
	Tag int    `json:"t"`
	Str []byte `json:"s,omitempty"`
	Num uint64 `json:"n"`
	Int int64  `json:"i"`
}

// SortKey converts back to the comparable form.
func (k Key) SortKey() item.SortKey {
	return item.SortKey{Tag: k.Tag, Str: string(k.Str), Num: math.Float64frombits(k.Num), Int: k.Int}
}

func keyOf(sk item.SortKey) Key {
	var s []byte
	if sk.Str != "" {
		s = []byte(sk.Str)
	}
	return Key{Tag: sk.Tag, Str: s, Num: math.Float64bits(sk.Num), Int: sk.Int}
}

// ZoneMap summarizes one column of one segment: how many rows yield a
// value (vector.Lookup semantics: non-object rows and missing keys yield
// absent), how many of those are null, the set of value kinds, and the
// min/max sort key over the keyable (atomic) values. Missing rows are
// Rows - Present at the segment level.
type ZoneMap struct {
	Present int    `json:"present"`
	Nulls   int    `json:"nulls"`
	Kinds   uint32 `json:"kinds"`
	// HasRange reports whether Min/Max are valid: at least one present
	// value was atomic and therefore sort-keyable.
	HasRange bool `json:"has_range,omitempty"`
	Min      Key  `json:"min"`
	Max      Key  `json:"max"`
}

// observe folds one column value into the zone map.
func (z *ZoneMap) observe(v item.Item) {
	z.Present++
	switch t := v.(type) {
	case item.Null:
		z.Kinds |= KindNull
		z.Nulls++
	case item.Bool:
		if bool(t) {
			z.Kinds |= KindTrue
		} else {
			z.Kinds |= KindFalse
		}
	case item.Int:
		z.Kinds |= KindInt
	case item.Double:
		z.Kinds |= KindDouble
	case item.Dec:
		z.Kinds |= KindDec
	case item.Str:
		z.Kinds |= KindString
	default:
		z.Kinds |= KindItem
		return // non-atomic: no sort key, min/max unchanged
	}
	sk, err := item.EncodeSortKey([]item.Item{v}, false)
	if err != nil {
		z.Kinds |= KindItem
		return
	}
	if !z.HasRange {
		z.HasRange = true
		z.Min, z.Max = keyOf(sk), keyOf(sk)
		return
	}
	if sk.Compare(z.Min.SortKey()) < 0 {
		z.Min = keyOf(sk)
	}
	if sk.Compare(z.Max.SortKey()) > 0 {
		z.Max = keyOf(sk)
	}
}

// ColZone pairs a column name with its zone map. The manifest stores the
// list sorted by name, keeping the JSON deterministic.
type ColZone struct {
	Name string  `json:"name"`
	Zone ZoneMap `json:"zone"`
}

// ZoneMaps computes the per-column zone maps of a decoded segment. The
// decoder re-runs it after every cold read and compares against the
// manifest: zone maps inconsistent with the lane data are a structured
// error, never a silently wrong prune.
func ZoneMaps(rows []item.Item) []ColZone {
	var order []string
	maps := map[string]*ZoneMap{}
	for _, r := range rows {
		o, ok := r.(*item.Object)
		if !ok {
			continue
		}
		// Per-column observation follows lookup semantics: duplicate keys
		// observe the first (winning) value only, once.
		seen := map[string]bool{}
		for _, k := range o.Keys() {
			if seen[k] {
				continue
			}
			seen[k] = true
			z := maps[k]
			if z == nil {
				z = &ZoneMap{}
				maps[k] = z
				order = append(order, k)
			}
			v, _ := o.Get(k)
			z.observe(v)
		}
	}
	sortStrings(order)
	out := make([]ColZone, len(order))
	for i, k := range order {
		out[i] = ColZone{Name: k, Zone: *maps[k]}
	}
	return out
}

// zonesEqual compares two zone-map sets for the consistency check.
func zonesEqual(a, b []ColZone) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || !zoneEqual(a[i].Zone, b[i].Zone) {
			return false
		}
	}
	return true
}

func zoneEqual(a, b ZoneMap) bool {
	return a.Present == b.Present && a.Nulls == b.Nulls && a.Kinds == b.Kinds &&
		a.HasRange == b.HasRange && keyEqual(a.Min, b.Min) && keyEqual(a.Max, b.Max)
}

func keyEqual(a, b Key) bool {
	return a.Tag == b.Tag && string(a.Str) == string(b.Str) && a.Num == b.Num && a.Int == b.Int
}

func sortStrings(s []string) { sort.Strings(s) }

package segment

import (
	"bytes"
	"fmt"
	"math"
	"math/big"
	"testing"

	"rumble/internal/item"
)

// itemsEqual is exact deep equality: Double compares by IEEE bits (so
// -0.0 != +0.0 and NaN == NaN) and Dec by big.Rat value, the two places
// canonical JSON rendering would blur.
func itemsEqual(a, b item.Item) bool {
	switch x := a.(type) {
	case item.Null:
		_, ok := b.(item.Null)
		return ok
	case item.Bool:
		y, ok := b.(item.Bool)
		return ok && x == y
	case item.Int:
		y, ok := b.(item.Int)
		return ok && x == y
	case item.Double:
		y, ok := b.(item.Double)
		return ok && math.Float64bits(float64(x)) == math.Float64bits(float64(y))
	case item.Dec:
		y, ok := b.(item.Dec)
		return ok && x.Rat().Cmp(y.Rat()) == 0
	case item.Str:
		y, ok := b.(item.Str)
		return ok && x == y
	case *item.Array:
		y, ok := b.(*item.Array)
		if !ok || x.Len() != y.Len() {
			return false
		}
		for i := 0; i < x.Len(); i++ {
			if !itemsEqual(x.Member(i), y.Member(i)) {
				return false
			}
		}
		return true
	case *item.Object:
		y, ok := b.(*item.Object)
		if !ok || x.Len() != y.Len() {
			return false
		}
		for i, k := range x.Keys() {
			if y.Keys()[i] != k || !itemsEqual(x.ValueAt(i), y.ValueAt(i)) {
				return false
			}
		}
		return true
	}
	return false
}

func obj(pairs ...any) *item.Object {
	keys := make([]string, 0, len(pairs)/2)
	values := make([]item.Item, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		keys = append(keys, pairs[i].(string))
		values = append(values, pairs[i+1].(item.Item))
	}
	return item.NewObject(keys, values)
}

func dec(s string) item.Item {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		panic("bad rat " + s)
	}
	return item.NewDecimal(r)
}

// roundTripRows is the shared fixture: every value kind the format must
// carry, plus the shapes that force the overflow path.
func roundTripRows() []item.Item {
	return []item.Item{
		obj("a", item.Int(1), "b", item.Str("x")),
		obj("a", item.Int(-42), "c", item.Double(3.5)),
		obj("a", item.Null{}, "b", item.Bool(true), "d", item.Bool(false)),
		obj("a", item.Double(math.Copysign(0, -1))), // -0.0 must keep its sign bit
		obj("a", item.Double(math.Inf(1)), "b", item.Double(math.NaN())),
		obj("dec", dec("10000000000000001/10000000000000000")), // sub-ulp decimal
		obj("dec", dec("2"), "a", item.Int(2)),                 // integral decimal stays Dec
		obj("nested", item.NewArray([]item.Item{item.Int(1), obj("k", item.Str("v"))})),
		obj("s", item.Str(""), "u", item.Str("héllo\x00wörld")),
		obj("big", item.Int(math.MaxInt64), "small", item.Int(math.MinInt64)),
		obj(), // empty object
		obj("dup", item.Int(1), "dup", item.Int(2)), // duplicate keys -> overflow row
		item.NewArray([]item.Item{item.Int(7)}),     // non-object rows -> overflow
		item.Int(99),
		item.Str("bare string"),
		item.Null{},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := map[string][]item.Item{
		"mixed":     roundTripRows(),
		"empty":     {},
		"one":       {obj("g", item.Int(0), "v", item.Int(10))},
		"uniform":   {obj("g", item.Int(1)), obj("g", item.Int(2)), obj("g", item.Int(3))},
		"disjoint":  {obj("a", item.Int(1)), obj("b", item.Str("x")), obj("c", item.Null{})},
		"overflows": {item.Int(1), item.Str("two"), item.NewArray(nil)},
	}
	full := make([]item.Item, Rows)
	for i := range full {
		full[i] = obj("g", item.Int(i%7), "v", item.Int(i))
	}
	cases["full-capacity"] = full

	// Sparse/wide shapes — few rows, many distinct keys — are valid
	// segments too (a tail segment of heterogeneous data looks exactly
	// like this); Decode must accept every byte image Encode produces.
	wideRow := func(n, off int) item.Item {
		keys := make([]string, n)
		values := make([]item.Item, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%04d", off+i)
			values[i] = item.Int(off + i)
		}
		return item.NewObject(keys, values)
	}
	cases["one-row-200-cols"] = []item.Item{wideRow(200, 0)}
	sparse := make([]item.Item, 10)
	for i := range sparse {
		sparse[i] = wideRow(100, i*100) // disjoint keys: 1000 columns, 10 rows
	}
	cases["sparse-wide"] = sparse

	for name, rows := range cases {
		t.Run(name, func(t *testing.T) {
			data, err := Encode(rows)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			dec, err := Decode("t.rseg", data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if len(dec.Rows) != len(rows) {
				t.Fatalf("decoded %d rows, want %d", len(dec.Rows), len(rows))
			}
			for i := range rows {
				if !itemsEqual(rows[i], dec.Rows[i]) {
					t.Errorf("row %d: decoded %v, want %v", i, dec.Rows[i], rows[i])
				}
			}
		})
	}
}

// expectedField is the item a projected column must surface for one row:
// the first value under key f of an object row, absent otherwise — the
// same contract a per-row object lookup implements.
func expectedField(row item.Item, f string) item.Item {
	o, ok := row.(*item.Object)
	if !ok {
		return nil
	}
	v, ok := o.Get(f)
	if !ok {
		return nil
	}
	return v
}

// TestDecodeColumnsMatchesLookup pins the projected decoder against the
// row decoder: for every corpus image and every field (plus one the
// segment lacks), DecodeColumns must surface exactly the items a per-row
// field lookup over Decode's rows yields — including dictionary string
// lanes, NaN/-0.0 doubles, non-UTF-8 strings, and overflow rows.
func TestDecodeColumnsMatchesLookup(t *testing.T) {
	cases := map[string][]item.Item{
		"mixed":     roundTripRows(),
		"empty":     {},
		"uniform":   {obj("g", item.Int(1)), obj("g", item.Int(2)), obj("g", item.Int(3))},
		"overflows": {item.Int(1), item.Str("two"), item.NewArray(nil)},
	}
	// Overflow row mid-segment surrounded by lane rows: projected string
	// columns must serve the dup-key row's fields through the dictionary.
	mid := make([]item.Item, 0, 64)
	for i := 0; i < 64; i++ {
		if i == 31 {
			mid = append(mid, obj("s", item.Str("dup1"), "s", item.Str("dup2"), "v", item.Int(int64(i))))
			continue
		}
		mid = append(mid, obj("s", item.Str(fmt.Sprintf("s%d", i%5)), "v", item.Int(int64(i))))
	}
	cases["overflow-mid"] = mid

	for name, rows := range cases {
		t.Run(name, func(t *testing.T) {
			data, err := Encode(rows)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			fields := []string{"definitely-missing"}
			for _, cz := range ZoneMaps(rows) {
				fields = append(fields, cz.Name)
			}
			cs, err := DecodeColumns("t.rseg", data, fields)
			if err != nil {
				t.Fatalf("DecodeColumns: %v", err)
			}
			if cs.NumRows != len(rows) {
				t.Fatalf("NumRows = %d, want %d", cs.NumRows, len(rows))
			}
			for _, f := range fields {
				col := cs.Col(f)
				if col == nil {
					t.Fatalf("field %s: no column", f)
				}
				for i := range rows {
					want := expectedField(rows[i], f)
					got := col.Item(i)
					if (got == nil) != (want == nil) || (got != nil && !itemsEqual(got, want)) {
						t.Errorf("field %s row %d: got %v, want %v", f, i, got, want)
					}
				}
			}
		})
	}
}

func TestEncodeRejectsOverCapacity(t *testing.T) {
	rows := make([]item.Item, Rows+1)
	for i := range rows {
		rows[i] = obj("v", item.Int(i))
	}
	if _, err := Encode(rows); err == nil {
		t.Fatal("Encode accepted more than Rows rows")
	}
}

// TestDecodeTorture: every truncation of a valid segment, and every
// single-bit flip anywhere in it, must yield a structured error or a
// bit-identical decode — never a panic, a hang, or silently wrong rows.
func TestDecodeTorture(t *testing.T) {
	rows := roundTripRows()
	data, err := Encode(rows)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncations", func(t *testing.T) {
		for n := 0; n < len(data); n++ {
			if _, err := Decode("t.rseg", data[:n]); err == nil {
				t.Fatalf("truncation to %d bytes decoded without error", n)
			} else if _, ok := err.(*Error); !ok {
				t.Fatalf("truncation to %d bytes: unstructured error %T: %v", n, err, err)
			}
		}
	})

	t.Run("bit-flips", func(t *testing.T) {
		for pos := 0; pos < len(data); pos++ {
			for bit := 0; bit < 8; bit++ {
				mut := bytes.Clone(data)
				mut[pos] ^= 1 << bit
				dec, err := Decode("t.rseg", mut)
				if err != nil {
					if _, ok := err.(*Error); !ok {
						t.Fatalf("flip %d.%d: unstructured error %T: %v", pos, bit, err, err)
					}
					continue
				}
				// The payload is CRC-protected, so a silent decode can only
				// come from a header flip that still parses; it must then
				// reproduce the rows exactly to count as harmless.
				if len(dec.Rows) != len(rows) {
					t.Fatalf("flip %d.%d: decoded %d rows silently", pos, bit, len(dec.Rows))
				}
				for i := range rows {
					if !itemsEqual(rows[i], dec.Rows[i]) {
						t.Fatalf("flip %d.%d: row %d silently wrong", pos, bit, i)
					}
				}
			}
		}
	})

	t.Run("appended-garbage", func(t *testing.T) {
		if _, err := Decode("t.rseg", append(bytes.Clone(data), 0xAB)); err == nil {
			t.Fatal("trailing garbage decoded without error")
		}
	})
}

func FuzzSegmentDecode(f *testing.F) {
	for _, rows := range [][]item.Item{
		roundTripRows(),
		{},
		{obj("g", item.Int(1), "v", item.Double(0.5))},
		{
			// Dictionary-heavy seed: repeated strings share codes, and a
			// duplicate-key row forces the overflow (exact-items) shape.
			obj("s", item.Str("aa"), "v", item.Int(1)),
			obj("s", item.Str("bb"), "v", item.Int(2)),
			obj("s", item.Str("aa"), "v", item.Int(3)),
			obj("s", item.Str("dup1"), "s", item.Str("dup2"), "v", item.Int(4)),
			obj("s", item.Str("bb"), "v", item.Int(5)),
		},
	} {
		data, err := Encode(rows)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("RSEG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode("fuzz.rseg", data)
		if err != nil {
			if _, ok := err.(*Error); !ok {
				t.Fatalf("unstructured error %T: %v", err, err)
			}
			// The projected decoder sees the same corrupt image; it may
			// reject or accept (it skips lanes the row decoder reads), but
			// never with an unstructured error or a panic.
			if _, cerr := DecodeColumns("fuzz.rseg", data, []string{"g", "v"}); cerr != nil {
				if _, ok := cerr.(*Error); !ok {
					t.Fatalf("unstructured DecodeColumns error %T: %v", cerr, cerr)
				}
			}
			return
		}
		// A successful decode must be internally consistent: zone maps and
		// re-encoding must not panic either.
		zones := ZoneMaps(dec.Rows)
		if _, err := Encode(dec.Rows); err != nil {
			t.Fatalf("re-encode of decoded rows failed: %v", err)
		}
		// Projected decode of every column (and one the image lacks) must
		// agree with a per-row field lookup over the decoded rows —
		// dictionary/code lanes included.
		fields := []string{"fuzz-missing"}
		for _, cz := range zones {
			fields = append(fields, cz.Name)
		}
		cs, err := DecodeColumns("fuzz.rseg", data, fields)
		if err != nil {
			t.Fatalf("DecodeColumns rejected an image Decode accepted: %v", err)
		}
		if cs.NumRows != len(dec.Rows) {
			t.Fatalf("DecodeColumns rows = %d, Decode rows = %d", cs.NumRows, len(dec.Rows))
		}
		for _, f := range fields {
			col := cs.Col(f)
			if col == nil {
				t.Fatalf("field %s: no column", f)
			}
			for i := range dec.Rows {
				want := expectedField(dec.Rows[i], f)
				got := col.Item(i)
				if (got == nil) != (want == nil) || (got != nil && !itemsEqual(got, want)) {
					t.Fatalf("field %s row %d: projected %v, row decode %v", f, i, got, want)
				}
			}
		}
	})
}

package segment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rumble/internal/item"
)

// writeSource writes n JSON lines {"g": i % 7, "v": i} and returns the path.
func writeSource(t *testing.T, n int) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "{\"g\": %d, \"v\": %d}\n", i%7, i)
	}
	path := filepath.Join(t.TempDir(), "data.jsonl")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fetchAll(t *testing.T, ds *Dataset) []item.Item {
	t.Helper()
	var rows []item.Item
	for i := 0; i < ds.NumSegments(); i++ {
		seg, _, err := ds.Fetch(i)
		if err != nil {
			t.Fatalf("Fetch(%d): %v", i, err)
		}
		rows = append(rows, seg...)
	}
	return rows
}

func TestIngestAndOpen(t *testing.T) {
	const n = 2*Rows + 123 // two full segments plus a partial tail
	path := writeSource(t, n)
	if err := Ingest(path); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.NumSegments(); got != 3 {
		t.Fatalf("NumSegments = %d, want 3", got)
	}
	// All segments but the last hold exactly Rows rows — the invariant the
	// scanner's positional slot numbering depends on.
	for i := 0; i < ds.NumSegments()-1; i++ {
		if ds.Meta(i).Rows != Rows {
			t.Fatalf("segment %d holds %d rows, want %d", i, ds.Meta(i).Rows, Rows)
		}
	}
	rows := fetchAll(t, ds)
	if len(rows) != n {
		t.Fatalf("fetched %d rows, want %d", len(rows), n)
	}
	for i, r := range rows {
		want := obj("g", item.Int(i%7), "v", item.Int(i))
		if !itemsEqual(r, want) {
			t.Fatalf("row %d: got %v, want %v", i, r, want)
		}
	}
	// Every segment carries zone maps for both columns, with sane ranges.
	z, ok := ds.Meta(0).Zone("v")
	if !ok {
		t.Fatal("segment 0 has no zone map for v")
	}
	if !z.HasRange || z.Min.SortKey().Int != 0 || z.Max.SortKey().Int != Rows-1 {
		t.Fatalf("segment 0 zone for v = %+v, want range [0, %d]", z, Rows-1)
	}
}

func TestOpenDatasetStaleHash(t *testing.T) {
	path := writeSource(t, 100)
	if err := Ingest(path); err != nil {
		t.Fatal(err)
	}
	// Appending a line changes the source content hash: the strict open
	// must refuse the now-stale segments with a structured error.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, `{"g": 0, "v": 100}`)
	f.Close()
	_, err = OpenDataset(path)
	if err == nil {
		t.Fatal("OpenDataset accepted stale segments")
	}
	if _, ok := err.(*Error); !ok || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("want structured stale-segments error, got %T: %v", err, err)
	}
	// The pooled store serves the raw scan immediately (nil dataset, nil
	// error) and rebuilds the segments in the background.
	reingests := 0
	s := NewStore(0)
	s.OnReingest = func() { reingests++ }
	ds, err := s.Open(path)
	if ds != nil || err != nil {
		t.Fatalf("Store.Open on stale segments: ds=%v err=%v, want nil/nil (raw scan while rebuilding)", ds, err)
	}
	s.WaitRebuilds()
	if reingests != 1 {
		t.Fatalf("background re-ingests = %d, want 1", reingests)
	}
	ds, err = s.Open(path)
	if err != nil || ds == nil {
		t.Fatalf("Store.Open after rebuild: ds=%v err=%v", ds, err)
	}
	if ds.Manifest.Rows != 101 {
		t.Fatalf("re-ingested manifest rows = %d, want 101", ds.Manifest.Rows)
	}
	rows := fetchAll(t, ds)
	if len(rows) != 101 || !itemsEqual(rows[100], obj("g", item.Int(0), "v", item.Int(100))) {
		t.Fatalf("rebuilt dataset rows = %d, want 101 ending with the appended row", len(rows))
	}
}

func TestStoreTorture(t *testing.T) {
	newDataset := func(t *testing.T) (*Dataset, string) {
		path := writeSource(t, Rows+50)
		if err := Ingest(path); err != nil {
			t.Fatal(err)
		}
		ds, err := OpenDataset(path)
		if err != nil {
			t.Fatal(err)
		}
		return ds, filepath.Join(ds.Dir, ds.Meta(0).File)
	}
	wantStructuredFetchError := func(t *testing.T, ds *Dataset, substr string) {
		t.Helper()
		_, _, err := ds.Fetch(0)
		if err == nil {
			t.Fatal("Fetch succeeded on corrupted segment")
		}
		if _, ok := err.(*Error); !ok {
			t.Fatalf("unstructured error %T: %v", err, err)
		}
		if substr != "" && !strings.Contains(err.Error(), substr) {
			t.Fatalf("error %q does not mention %q", err, substr)
		}
	}

	t.Run("truncated segment file", func(t *testing.T) {
		ds, seg := newDataset(t)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		wantStructuredFetchError(t, ds, "")
	})

	t.Run("bit-flipped lane", func(t *testing.T) {
		ds, seg := newDataset(t)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-10] ^= 0x40 // deep inside the lane payload
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		wantStructuredFetchError(t, ds, "checksum")
	})

	t.Run("deleted segment file", func(t *testing.T) {
		ds, seg := newDataset(t)
		if err := os.Remove(seg); err != nil {
			t.Fatal(err)
		}
		wantStructuredFetchError(t, ds, "")
	})

	t.Run("manifest zone maps inconsistent with lanes", func(t *testing.T) {
		ds, _ := newDataset(t)
		mpath := filepath.Join(ds.Dir, ManifestName)
		data, err := os.ReadFile(mpath)
		if err != nil {
			t.Fatal(err)
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		m.Segments[0].Cols[0].Zone.Nulls++ // claim a null the lanes don't hold
		tampered, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mpath, tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		ds2, err := OpenDataset(ds.Source)
		if err != nil {
			t.Fatal(err) // hash still matches: tampering surfaces at fetch time
		}
		wantStructuredFetchError(t, ds2, "zone maps inconsistent")
	})

	t.Run("manifest row count inconsistent", func(t *testing.T) {
		ds, _ := newDataset(t)
		mpath := filepath.Join(ds.Dir, ManifestName)
		data, err := os.ReadFile(mpath)
		if err != nil {
			t.Fatal(err)
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		m.Segments[0].Rows--
		tampered, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mpath, tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		ds2, err := OpenDataset(ds.Source)
		if err != nil {
			t.Fatal(err)
		}
		wantStructuredFetchError(t, ds2, "manifest says")
	})
}

func TestStoreOpenFallbackOnUnparseableSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"g\": 1}\nnot json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(0)
	ds, err := s.Open(path)
	if ds != nil || err == nil {
		t.Fatalf("Open of unparseable source: ds=%v err=%v, want nil dataset + error", ds, err)
	}
	if _, err := os.Stat(Dir(path)); !os.IsNotExist(err) {
		t.Fatalf("failed ingest left a segments directory behind: %v", err)
	}
	// The failure is cached per store: the second open resolves identically.
	ds2, err2 := s.Open(path)
	if ds2 != nil || err2 == nil {
		t.Fatalf("second Open: ds=%v err=%v", ds2, err2)
	}
}

func TestBufferPoolLRU(t *testing.T) {
	loads := map[string]int{}
	mkLoad := func(key string, cost int64) func() (any, int64, int, error) {
		return func() (any, int64, int, error) {
			loads[key]++
			return make([]item.Item, 1), cost, 2, nil
		}
	}
	p := newPool(100)
	get := func(key string, cost int64) int {
		_, blocks, err := p.get(key, cost, mkLoad(key, cost))
		if err != nil {
			t.Fatal(err)
		}
		return blocks
	}
	if get("a", 40) != 2 {
		t.Fatal("cold read of a must report its blocks")
	}
	if get("a", 40) != 0 {
		t.Fatal("hot read of a must report zero cold blocks")
	}
	get("b", 40)
	get("c", 40) // 120 > 100: evicts a (LRU)
	if get("a", 40) != 2 {
		t.Fatal("a must have been evicted and reload cold")
	}
	if loads["a"] != 2 || loads["b"] != 1 {
		t.Fatalf("load counts: %v", loads)
	}
	// An entry larger than the whole pool still loads (never evict the
	// entry just inserted) and is evicted by the next insertion.
	if get("huge", 500) != 2 {
		t.Fatal("oversized entry must load")
	}
	get("b", 40)
	if loads["huge"] != 1 {
		t.Fatalf("huge loaded %d times before re-request", loads["huge"])
	}
	if get("huge", 500) != 2 {
		t.Fatal("oversized entry must have been evicted by the next insert")
	}
}

func TestBufferPoolRetriesFailedLoads(t *testing.T) {
	// A failed load (e.g. a transient EMFILE) must not poison the entry
	// for its whole residency: the pool drops it, the next get retries,
	// and the failed entry's cost does not leak into the pool budget.
	p := newPool(100)
	calls := 0
	load := func() (any, int64, int, error) {
		calls++
		if calls < 3 {
			return nil, 0, 0, errf("x.rseg", "read: too many open files")
		}
		return make([]item.Item, 1), 10, 2, nil
	}
	for i := 0; i < 2; i++ {
		if _, _, err := p.get("x", 10, load); err == nil {
			t.Fatalf("get %d: want error", i)
		}
		if p.bytes != 0 {
			t.Fatalf("get %d: failed entry left %d bytes accounted", i, p.bytes)
		}
	}
	v, blocks, err := p.get("x", 10, load)
	rows, _ := v.([]item.Item)
	if err != nil || len(rows) != 1 || blocks != 2 {
		t.Fatalf("retry after transient failure: rows=%v blocks=%d err=%v", rows, blocks, err)
	}
	if calls != 3 {
		t.Fatalf("load ran %d times, want one per get until success", calls)
	}
	if _, blocks, _ := p.get("x", 10, load); blocks != 0 || calls != 3 {
		t.Fatal("successful load must be cached as usual")
	}
}

func TestBufferPoolCostsDecodedSize(t *testing.T) {
	// Entries are charged by what they pin in memory — the loader-settled
	// decoded cost — not the (much smaller) on-disk size passed as the
	// provisional cost, so the configured budget bounds real memory.
	p := newPool(4096)
	loads := map[string]int{}
	bigLoad := func(key string) func() (any, int64, int, error) {
		return func() (any, int64, int, error) {
			loads[key]++
			rows := make([]item.Item, 50)
			for i := range rows {
				rows[i] = item.Str(strings.Repeat("x", 100))
			}
			return rows, decodedCost(rows), 1, nil // decoded ≈ 6.6 KiB, nominal cost 10
		}
	}
	if _, _, err := p.get("a", 10, bigLoad("a")); err != nil {
		t.Fatal(err)
	}
	if p.bytes <= 4096 {
		t.Fatalf("pool accounts %d bytes for a ~6.6 KiB entry", p.bytes)
	}
	if _, _, err := p.get("b", 10, bigLoad("b")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.get("a", 10, bigLoad("a")); err != nil {
		t.Fatal(err)
	}
	// With file-size costing (10+10 bytes) nothing would ever be evicted;
	// with decoded costing, inserting b must push a out of the budget.
	if loads["a"] != 2 {
		t.Fatalf("a loaded %d times, want eviction by b's decoded size and a cold reload", loads["a"])
	}
}

// Package dfs is a local stand-in for HDFS/S3: line-oriented files read in
// parallel through byte-range splits, and directory-of-part-files output
// layouts (part-00000, part-00001, ...). Splits are aligned to newline
// boundaries exactly the way Hadoop input splits are: a reader that does
// not start at offset zero skips the first (partial) line, and every reader
// finishes the line that straddles its end boundary.
package dfs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DefaultSplitSize is the split granularity for single large files,
// standing in for an HDFS block (scaled down from 128 MB).
const DefaultSplitSize = 8 << 20

// BlockSize is the granularity at which ReadLines reports simulated block
// reads to its observer (for I/O latency emulation).
const BlockSize = 64 << 10

// Split is one parallel unit of input: a byte range of a file.
type Split struct {
	Path   string
	Offset int64
	Length int64
}

// ListSplits enumerates the splits of path. A directory yields one split
// per part file; a plain file larger than splitSize is divided into ranges
// (splitSize <= 0 uses DefaultSplitSize).
func ListSplits(path string, splitSize int64) ([]Split, error) {
	if splitSize <= 0 {
		splitSize = DefaultSplitSize
	}
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("dfs: %w", err)
	}
	if info.IsDir() {
		entries, err := os.ReadDir(path)
		if err != nil {
			return nil, fmt.Errorf("dfs: %w", err)
		}
		var names []string
		for _, e := range entries {
			if e.IsDir() || strings.HasPrefix(e.Name(), ".") || strings.HasPrefix(e.Name(), "_") {
				continue
			}
			names = append(names, e.Name())
		}
		sort.Strings(names)
		var splits []Split
		for _, n := range names {
			fp := filepath.Join(path, n)
			fi, err := os.Stat(fp)
			if err != nil {
				return nil, fmt.Errorf("dfs: %w", err)
			}
			splits = append(splits, fileSplits(fp, fi.Size(), splitSize)...)
		}
		return splits, nil
	}
	return fileSplits(path, info.Size(), splitSize), nil
}

func fileSplits(path string, size, splitSize int64) []Split {
	if size == 0 {
		return []Split{{Path: path, Offset: 0, Length: 0}}
	}
	var splits []Split
	for off := int64(0); off < size; off += splitSize {
		length := splitSize
		if off+length > size {
			length = size - off
		}
		splits = append(splits, Split{Path: path, Offset: off, Length: length})
	}
	return splits
}

// ReadLines streams the lines belonging to split through yield. Boundary
// handling follows Hadoop: skip a partial first line unless at offset 0,
// and read past Length to finish the last line. blockObserver, when
// non-nil, is called once per BlockSize of data consumed (used to simulate
// storage latency); the trailing partial block is reported as one block
// when the split finishes, so every non-empty read incurs at least one
// simulated round trip — splits smaller than a block would otherwise never
// report I/O at all, making latency simulation (and the cluster speedups
// it demonstrates) silently disappear for fine-grained splits.
func ReadLines(split Split, blockObserver func(blocks int), yield func(line []byte) error) (err error) {
	f, err := os.Open(split.Path)
	if err != nil {
		return fmt.Errorf("dfs: %w", err)
	}
	defer f.Close()
	if split.Offset > 0 {
		if _, err := f.Seek(split.Offset, io.SeekStart); err != nil {
			return fmt.Errorf("dfs: %w", err)
		}
	}
	r := bufio.NewReaderSize(f, 256<<10)
	var consumed int64
	var acct Accountant
	defer func() {
		// Round the residual partial block up to one simulated block read
		// on every exit path (EOF, boundary, yield abort): the bytes were
		// fetched, so the round trip happened even if consumption stopped.
		if blockObserver != nil {
			if b := acct.Finish(); b > 0 {
				blockObserver(b)
			}
		}
	}()
	account := func(n int) error {
		consumed += int64(n)
		if b := acct.Add(int64(n)); blockObserver != nil && b > 0 {
			blockObserver(b)
		}
		return nil
	}
	if split.Offset > 0 {
		// Skip the partial line owned by the previous split.
		skipped, err := r.ReadBytes('\n')
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("dfs: %w", err)
		}
		if err := account(len(skipped)); err != nil {
			return err
		}
	}
	for consumed <= split.Length {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			n := len(line)
			trimmed := line
			if trimmed[len(trimmed)-1] == '\n' {
				trimmed = trimmed[:len(trimmed)-1]
			}
			if len(trimmed) > 0 && trimmed[len(trimmed)-1] == '\r' {
				trimmed = trimmed[:len(trimmed)-1]
			}
			if len(trimmed) > 0 {
				if yerr := yield(trimmed); yerr != nil {
					return yerr
				}
			}
			if aerr := account(n); aerr != nil {
				return aerr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("dfs: %w", err)
		}
	}
	return nil
}

// Writer writes a directory-of-part-files dataset, one part per partition,
// mirroring saveAsTextFile. Create the writer, obtain one PartWriter per
// partition (safe concurrently), then Commit.
type Writer struct {
	dir string
}

// NewWriter prepares (and creates) the output directory.
func NewWriter(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dfs: %w", err)
	}
	return &Writer{dir: dir}, nil
}

// PartWriter is a buffered writer for one part file.
type PartWriter struct {
	f *os.File
	w *bufio.Writer
}

// Part opens part file p ("part-00000" style).
func (w *Writer) Part(p int) (*PartWriter, error) {
	name := filepath.Join(w.dir, fmt.Sprintf("part-%05d", p))
	f, err := os.Create(name)
	if err != nil {
		return nil, fmt.Errorf("dfs: %w", err)
	}
	return &PartWriter{f: f, w: bufio.NewWriterSize(f, 256<<10)}, nil
}

// WriteLine writes one record plus newline.
func (pw *PartWriter) WriteLine(line []byte) error {
	if _, err := pw.w.Write(line); err != nil {
		return err
	}
	return pw.w.WriteByte('\n')
}

// Close flushes and closes the part file.
func (pw *PartWriter) Close() error {
	if err := pw.w.Flush(); err != nil {
		pw.f.Close()
		return err
	}
	return pw.f.Close()
}

// Commit finalizes the dataset by writing a _SUCCESS marker, as Hadoop
// output committers do.
func (w *Writer) Commit() error {
	return os.WriteFile(filepath.Join(w.dir, "_SUCCESS"), nil, 0o644)
}

package dfs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestAccountantSequences pins the shared block-accounting rules every
// storage path charges simulated I/O through: whole blocks report as they
// are crossed, a trailing partial block rounds up to one on Finish, and
// an exact-boundary stream charges nothing extra.
func TestAccountantSequences(t *testing.T) {
	cases := []struct {
		name string
		adds []int64
		// wantAdds[i] is the block count Add must return for adds[i].
		wantAdds   []int
		wantFinish int
	}{
		{name: "empty", adds: nil, wantAdds: nil, wantFinish: 0},
		{name: "sub-block rounds up once", adds: []int64{10}, wantAdds: []int{0}, wantFinish: 1},
		{name: "exact block no residual", adds: []int64{BlockSize}, wantAdds: []int{1}, wantFinish: 0},
		{name: "one byte over", adds: []int64{BlockSize + 1}, wantAdds: []int{1}, wantFinish: 1},
		{name: "multi-block single add", adds: []int64{3*BlockSize + 5}, wantAdds: []int{3}, wantFinish: 1},
		{
			name: "accumulates across adds",
			adds: []int64{BlockSize / 2, BlockSize / 2, BlockSize / 2},
			// The second add completes the first block; the third leaves a
			// half-block residual.
			wantAdds:   []int{0, 1, 0},
			wantFinish: 1,
		},
		{
			name:       "boundary across adds",
			adds:       []int64{BlockSize - 1, 1},
			wantAdds:   []int{0, 1},
			wantFinish: 0,
		},
		{
			name:       "zero adds ignored",
			adds:       []int64{0, BlockSize, 0},
			wantAdds:   []int{0, 1, 0},
			wantFinish: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var a Accountant
			for i, n := range tc.adds {
				if got := a.Add(n); got != tc.wantAdds[i] {
					t.Errorf("Add(%d) [#%d] = %d, want %d", n, i, got, tc.wantAdds[i])
				}
			}
			if got := a.Finish(); got != tc.wantFinish {
				t.Errorf("Finish() = %d, want %d", got, tc.wantFinish)
			}
			// Finish is idempotent: a second call never double-charges.
			if got := a.Finish(); got != 0 {
				t.Errorf("second Finish() = %d, want 0", got)
			}
		})
	}
}

// TestBlocksFor pins the one-shot helper against the streaming rules.
func TestBlocksFor(t *testing.T) {
	cases := map[int64]int{
		0:                 0,
		1:                 1,
		BlockSize - 1:     1,
		BlockSize:         1,
		BlockSize + 1:     2,
		5 * BlockSize:     5,
		5*BlockSize + 100: 6,
	}
	for n, want := range cases {
		if got := BlocksFor(n); got != want {
			t.Errorf("BlocksFor(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestReadLinesChargesLikeAccountant pins that ReadLines' observer reports
// sum to exactly what the shared accountant charges for the bytes it
// consumed — the invariant that makes raw scans and segment reads charge
// simulated I/O identically for identical byte volumes.
func TestReadLinesChargesLikeAccountant(t *testing.T) {
	for _, size := range []int{100, BlockSize, BlockSize + 1, 3*BlockSize + 17} {
		line := bytes.Repeat([]byte("x"), 99) // 100 bytes per line with \n
		var data []byte
		for len(data) < size {
			data = append(data, line...)
			data = append(data, '\n')
		}
		path := filepath.Join(t.TempDir(), "data.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var got int
		err := ReadLines(Split{Path: path, Offset: 0, Length: int64(len(data))},
			func(b int) { got += b },
			func([]byte) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if want := BlocksFor(int64(len(data))); got != want {
			t.Errorf("size %d: ReadLines charged %d blocks, BlocksFor charges %d", len(data), got, want)
		}
	}
}

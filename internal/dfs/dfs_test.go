package dfs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTempFile(t *testing.T, content string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "data.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func collectSplit(t *testing.T, s Split) []string {
	t.Helper()
	var lines []string
	if err := ReadLines(s, nil, func(line []byte) error {
		lines = append(lines, string(line))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestSingleSplitReadsAllLines(t *testing.T) {
	path := writeTempFile(t, "one\ntwo\nthree\n")
	splits, err := ListSplits(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 {
		t.Fatalf("%d splits", len(splits))
	}
	lines := collectSplit(t, splits[0])
	if strings.Join(lines, ",") != "one,two,three" {
		t.Errorf("lines = %v", lines)
	}
}

func TestNoTrailingNewline(t *testing.T) {
	path := writeTempFile(t, "a\nb")
	splits, _ := ListSplits(path, 0)
	lines := collectSplit(t, splits[0])
	if strings.Join(lines, ",") != "a,b" {
		t.Errorf("lines = %v", lines)
	}
}

func TestCRLFHandling(t *testing.T) {
	path := writeTempFile(t, "a\r\nb\r\n")
	splits, _ := ListSplits(path, 0)
	lines := collectSplit(t, splits[0])
	if strings.Join(lines, ",") != "a,b" {
		t.Errorf("lines = %v", lines)
	}
}

func TestSplitBoundariesExactlyOnce(t *testing.T) {
	// Many lines, tiny splits: every line must appear exactly once no
	// matter where the split boundaries fall.
	var sb strings.Builder
	const n = 500
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `{"id": %d, "pad": "%s"}`+"\n", i, strings.Repeat("x", i%37))
	}
	path := writeTempFile(t, sb.String())
	for _, splitSize := range []int64{64, 256, 1000, 1 << 20} {
		splits, err := ListSplits(path, splitSize)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]int{}
		total := 0
		for _, s := range splits {
			for _, line := range collectSplit(t, s) {
				seen[line]++
				total++
			}
		}
		if total != n {
			t.Fatalf("splitSize %d: %d lines total, want %d", splitSize, total, n)
		}
		for line, count := range seen {
			if count != 1 {
				t.Fatalf("splitSize %d: line %q seen %d times", splitSize, line, count)
			}
		}
	}
}

func TestEmptyFile(t *testing.T) {
	path := writeTempFile(t, "")
	splits, err := ListSplits(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 {
		t.Fatalf("%d splits for empty file", len(splits))
	}
	if lines := collectSplit(t, splits[0]); len(lines) != 0 {
		t.Errorf("lines = %v", lines)
	}
}

func TestBlankLinesSkipped(t *testing.T) {
	path := writeTempFile(t, "a\n\n\nb\n")
	splits, _ := ListSplits(path, 0)
	lines := collectSplit(t, splits[0])
	if strings.Join(lines, ",") != "a,b" {
		t.Errorf("lines = %v", lines)
	}
}

func TestDirectoryOfPartFiles(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		pw, err := w.Part(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := pw.WriteLine([]byte(fmt.Sprintf("p%d-%d", p, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := pw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	splits, err := ListSplits(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("%d splits, want 3 (the _SUCCESS marker must be skipped)", len(splits))
	}
	total := 0
	for _, s := range splits {
		total += len(collectSplit(t, s))
	}
	if total != 12 {
		t.Errorf("read %d lines, want 12", total)
	}
}

func TestListSplitsMissingPath(t *testing.T) {
	if _, err := ListSplits("/definitely/not/here", 0); err == nil {
		t.Error("missing path should error")
	}
}

func TestBlockObserverSubBlockSplits(t *testing.T) {
	// Splits smaller than BlockSize must still report one block each, so
	// simulated storage latency applies to fine-grained parallel scans
	// (the Figure 14 speedup depends on overlapping this latency).
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString(strings.Repeat("z", 100))
		sb.WriteByte('\n')
	}
	path := writeTempFile(t, sb.String())
	splits, err := ListSplits(path, 4<<10) // 4 KiB splits, far below BlockSize
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) < 2 {
		t.Fatalf("%d splits, want several", len(splits))
	}
	for i, s := range splits {
		blocks := 0
		if err := ReadLines(s, func(n int) { blocks += n }, func([]byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if blocks < 1 {
			t.Errorf("split %d reported %d blocks, want at least 1", i, blocks)
		}
	}
}

func TestBlockObserverCalled(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		sb.WriteString(strings.Repeat("y", 100))
		sb.WriteByte('\n')
	}
	path := writeTempFile(t, sb.String())
	splits, _ := ListSplits(path, 1<<30)
	blocks := 0
	if err := ReadLines(splits[0], func(n int) { blocks += n }, func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	wantAtLeast := (5000 * 101) / BlockSize
	if blocks < wantAtLeast-1 {
		t.Errorf("observer saw %d blocks, want about %d", blocks, wantAtLeast)
	}
}

package dfs

// Accountant converts a stream of byte counts into simulated block reads
// at BlockSize granularity. It is the single source of truth for block
// accounting: ReadLines, the vector raw-morsel scanner and the segment
// store all charge I/O through it, so every storage path rounds the same
// way — whole blocks as they are crossed, plus one block for a trailing
// partial block when the stream finishes.
//
// The zero value is ready to use.
type Accountant struct {
	since int64 // bytes consumed since the last whole-block report
}

// Add records n more bytes consumed and returns the number of whole
// blocks newly crossed (possibly zero).
func (a *Accountant) Add(n int64) int {
	a.since += n
	blocks := a.since / BlockSize
	a.since %= BlockSize
	return int(blocks)
}

// Finish rounds a trailing partial block up to one block read — the bytes
// were fetched, so the round trip happened — and resets the accountant.
// It returns 0 when the stream ended exactly on a block boundary (or
// nothing was consumed since the last report), so it is idempotent.
func (a *Accountant) Finish() int {
	if a.since > 0 {
		a.since = 0
		return 1
	}
	return 0
}

// Pending returns the bytes consumed since the last whole-block report.
func (a *Accountant) Pending() int64 { return a.since }

// BlocksFor returns the simulated block reads a one-shot read of n bytes
// charges: ceil(n / BlockSize), with 0 bytes charging 0 blocks.
func BlocksFor(n int64) int {
	var a Accountant
	return a.Add(n) + a.Finish()
}

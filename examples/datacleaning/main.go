// Datacleaning: the paper's heterogeneity scenarios (Figures 5-7). The
// country field is sometimes a string, sometimes an array of strings, and
// sometimes missing — a dataset Spark SQL's DataFrames cannot type
// (Figure 6 forces it to strings). JSONiq's on-the-fly fallback expression
// ($o.country[], $o.country, "USA")[1] cleans it at query time while
// preserving every value's original type.
package main

import (
	"fmt"
	"log"

	"rumble"
)

var messyDocs = []string{
	`{"country": "AU", "target": "French", "bar": 2}`,
	`{"country": ["DE", "AT"], "target": "French", "bar": [4]}`,
	`{"target": "German", "bar": "6"}`,
	`{"country": "AU", "target": "German", "bar": 2}`,
	`{"country": ["US"], "target": "French", "bar": true}`,
	`{"country": null, "target": "German", "bar": 2}`,
}

func main() {
	eng := rumble.New(rumble.Config{Parallelism: 2, Executors: 2})
	if err := eng.RegisterJSON("messy", messyDocs); err != nil {
		log.Fatal(err)
	}

	fmt.Println("## Figure 7: grouping with an on-the-fly fallback for country")
	lines, err := eng.QueryJSON(`
		for $o in collection("messy")
		group by $c := ($o.country[], $o.country, "USA")[1],
		         $t := $o.target
		order by string($c), $t
		return { "country": $c, "target": $t, "count": count($o) }`)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}

	fmt.Println("\n## Figure 6 avoided: the bar field keeps its original type")
	lines, err = eng.QueryJSON(`
		for $o in collection("messy")
		let $kind := switch (true)
		    case $o.bar instance of integer return "integer"
		    case $o.bar instance of string  return "string"
		    case $o.bar instance of array   return "array"
		    case $o.bar instance of boolean return "boolean"
		    default return "missing"
		group by $k := $kind
		order by $k
		return { "bar-type": $k, "rows": count($o) }`)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}

	fmt.Println("\n## Cleaning: normalize every record to a flat, typed shape")
	lines, err = eng.QueryJSON(`
		for $o in collection("messy")
		count $id
		return {
		  "id": $id,
		  "country": ($o.country[], $o.country, "??")[1],
		  "target": $o.target,
		  "bar": (try { $o.bar cast as integer } catch * { null })
		}`)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

// Reddit: semi-structured analytics over a generated Reddit comments
// dataset with genuine schema drift (fields appear, disappear and change
// type across years), the paper's §6.6 workload. Demonstrates querying the
// data in place — no ETL, no schema declaration — and writing results back
// as a partitioned dataset.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"rumble"
	"rumble/internal/datagen"
)

func main() {
	n := flag.Int("n", 200_000, "number of reddit comments to generate")
	flag.Parse()

	dir := filepath.Join(os.TempDir(), "rumble-example-reddit")
	if _, err := os.Stat(filepath.Join(dir, "_SUCCESS")); err != nil {
		fmt.Printf("generating %d comments into %s ...\n", *n, dir)
		if err := datagen.WriteDataset(dir, datagen.NewRedditGenerator(13), *n, 8); err != nil {
			log.Fatal(err)
		}
	}

	eng := rumble.New(rumble.Config{Parallelism: 8, Executors: 4})

	fmt.Println("## Highly selective filter (the Figure 14/15 query)")
	start := time.Now()
	out, err := eng.QueryJSON(fmt.Sprintf(`
		count(for $c in json-file(%q)
		      where $c.score gt 1500 and contains($c.body, "data")
		      return $c)`, dir))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matches: %s (in %v)\n", out[0], time.Since(start).Round(time.Millisecond))

	fmt.Println("\n## Mean score per subreddit, despite schema drift")
	lines, err := eng.QueryJSON(fmt.Sprintf(`
		for $c in json-file(%q)
		group by $sub := $c.subreddit
		order by avg($c.score) descending
		count $rank
		where $rank le 5
		return { "subreddit": $sub, "avg-score": round(avg($c.score)) }`, dir))
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}

	fmt.Println("\n## The edited field is false OR a timestamp — group by its type")
	lines, err = eng.QueryJSON(fmt.Sprintf(`
		for $c in json-file(%q)
		let $kind := if ($c.edited instance of boolean) then "boolean"
		             else if ($c.edited instance of numeric) then "timestamp"
		             else "absent"
		group by $k := $kind
		order by $k
		return { "edited-shape": $k, "comments": count($c) }`, dir))
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}

	fmt.Println("\n## Write cleaned projection back as a partitioned dataset")
	outDir := filepath.Join(os.TempDir(), "rumble-example-reddit-out")
	os.RemoveAll(outDir)
	st, err := eng.Compile(fmt.Sprintf(`
		for $c in json-file(%q)
		where $c.score ge 1000
		return { "subreddit": $c.subreddit, "score": $c.score,
		         "gilded": (($c.gildings.gid_1, $c.gildings, 0)[1]) }`, dir))
	if err != nil {
		log.Fatal(err)
	}
	if err := st.WriteTo(outDir); err != nil {
		log.Fatal(err)
	}
	cnt, err := eng.QueryJSON(fmt.Sprintf(`count(json-file(%q))`, outDir))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s high-score records to %s\n", cnt[0], outDir)
}

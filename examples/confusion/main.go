// Confusion: the paper's three standard queries (§6.1) — filtering,
// grouping and sorting — over a generated Great-Language-Game dataset,
// executed in parallel via json-file() without any pre-loading.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"rumble"
	"rumble/internal/datagen"
)

func main() {
	n := flag.Int("n", 100_000, "number of confusion objects to generate")
	flag.Parse()

	dir := filepath.Join(os.TempDir(), "rumble-example-confusion")
	if _, err := os.Stat(filepath.Join(dir, "_SUCCESS")); err != nil {
		fmt.Printf("generating %d objects into %s ...\n", *n, dir)
		if err := datagen.WriteDataset(dir, datagen.NewConfusionGenerator(7), *n, 8); err != nil {
			log.Fatal(err)
		}
	}

	eng := rumble.New(rumble.Config{Parallelism: 8, Executors: 4})

	queries := map[string]string{
		"filter: how many players guessed right?": fmt.Sprintf(`
			count(for $o in json-file(%q)
			      where $o.guess eq $o.target
			      return $o)`, dir),
		"group: correct guesses per target language (top 5)": fmt.Sprintf(`
			for $o in json-file(%q)
			where $o.guess eq $o.target
			group by $lang := $o.target
			order by count($o) descending
			count $rank
			where $rank le 5
			return { "language": $lang, "correct": count($o) }`, dir),
		"sort: ten hardest recent games": fmt.Sprintf(`
			for $o in json-file(%q)
			where $o.guess ne $o.target
			order by $o.date descending, $o.country ascending
			count $c
			where $c le 10
			return { "date": $o.date, "country": $o.country,
			         "guessed": $o.guess, "was": $o.target }`, dir),
	}

	for title, q := range queries {
		fmt.Println("\n##", title)
		start := time.Now()
		lines, err := eng.QueryJSON(q)
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		fmt.Printf("-- %d result(s) in %v\n", len(lines), time.Since(start).Round(time.Millisecond))
	}
}

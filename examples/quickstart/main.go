// Quickstart: run a JSONiq FLWOR query over an in-memory sequence,
// distributed across the embedded Spark-like engine by parallelize().
package main

import (
	"fmt"
	"log"

	"rumble"
)

func main() {
	eng := rumble.New(rumble.Config{Parallelism: 4, Executors: 4})

	results, err := eng.QueryJSON(`
		for $x in parallelize(1 to 1000)
		where $x mod 7 eq 0
		group by $bucket := $x idiv 100
		order by $bucket
		return { "hundreds": $bucket, "multiples-of-7": count($x) }`)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range results {
		fmt.Println(line)
	}
}

package rumble_test

// Benchmarks reproducing every figure of the paper's evaluation (§6),
// scaled to run under `go test -bench=.`:
//
//	BenchmarkFig11_*  local measurements (Rumble, Spark, Spark SQL, PySpark)
//	BenchmarkFig12_*  JSONiq engines (Rumble, Zorba-model, Xidel-model)
//	BenchmarkFig13_*  cluster measurements (more cores, bigger input)
//	BenchmarkFig14_*  speedup vs executors
//	BenchmarkFig15_*  scaling with dataset size
//	BenchmarkAblation_* design-choice ablations (group-by COUNT pushdown,
//	                  DataFrame vs local FLWOR execution)
//
// cmd/benchfig runs the same harness at larger scales and prints the
// paper-style series.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rumble"
	"rumble/internal/baselines"
	"rumble/internal/baselines/pyspark"
	"rumble/internal/baselines/rawspark"
	"rumble/internal/baselines/singlenode"
	"rumble/internal/baselines/sparksql"
	"rumble/internal/bench"
	"rumble/internal/segment"
	"rumble/internal/spark"
)

var benchBase = filepath.Join(os.TempDir(), "rumble-bench-testing")

var datasetOnce sync.Map // key string -> path

func confusionPath(b *testing.B, n int) string {
	b.Helper()
	key := fmt.Sprintf("confusion-%d", n)
	if p, ok := datasetOnce.Load(key); ok {
		return p.(string)
	}
	p, err := bench.ConfusionDataset(benchBase, n)
	if err != nil {
		b.Fatal(err)
	}
	datasetOnce.Store(key, p)
	return p
}

func redditPath(b *testing.B, n int) string {
	b.Helper()
	key := fmt.Sprintf("reddit-%d", n)
	if p, ok := datasetOnce.Load(key); ok {
		return p.(string)
	}
	p, err := bench.RedditDataset(benchBase, n)
	if err != nil {
		b.Fatal(err)
	}
	datasetOnce.Store(key, p)
	return p
}

const (
	fig11Objects = 20_000
	fig13Objects = 40_000
	benchSplit   = 256 << 10
)

func fig11Engines() []baselines.Engine {
	sc := func() *spark.Context {
		return spark.NewContext(spark.Config{Parallelism: 8, Executors: 4})
	}
	return []baselines.Engine{
		bench.NewRumble(rumble.Config{Parallelism: 8, Executors: 4, SplitSize: benchSplit}),
		rawspark.New(sc(), benchSplit),
		sparksql.New(sc(), benchSplit),
		pyspark.New(sc(), benchSplit),
	}
}

func benchEngineQuery(b *testing.B, e baselines.Engine, q baselines.Query, path string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(q, path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11 is the local-measurements figure: three queries, four
// engines, one machine.
func BenchmarkFig11(b *testing.B) {
	path := confusionPath(b, fig11Objects)
	for _, q := range []baselines.Query{baselines.QueryFilter, baselines.QueryGroup, baselines.QuerySort} {
		for _, e := range fig11Engines() {
			b.Run(fmt.Sprintf("%s/%s", q, e.Name()), func(b *testing.B) {
				benchEngineQuery(b, e, q, path)
			})
		}
	}
}

// BenchmarkFig12 compares the JSONiq engines; the single-threaded models
// run with an effectively unlimited budget here (the OOM cliffs are
// exercised in the harness and unit tests, not timed).
func BenchmarkFig12(b *testing.B) {
	sizes := []int{5_000, 10_000, 20_000}
	for _, size := range sizes {
		path := confusionPath(b, size)
		engines := []baselines.Engine{
			bench.NewRumble(rumble.Config{Parallelism: 8, Executors: 4, SplitSize: benchSplit}),
			singlenode.New(singlenode.Zorba, 0),
			singlenode.New(singlenode.Xidel, 0),
		}
		for _, q := range []baselines.Query{baselines.QueryFilter, baselines.QueryGroup, baselines.QuerySort} {
			for _, e := range engines {
				b.Run(fmt.Sprintf("%s/n%d/%s", q, size, e.Name()), func(b *testing.B) {
					benchEngineQuery(b, e, q, path)
				})
			}
		}
	}
}

// BenchmarkFig13 is the cluster-measurements figure: the same engines on a
// larger input with doubled parallelism.
func BenchmarkFig13(b *testing.B) {
	path := confusionPath(b, fig13Objects)
	sc := func() *spark.Context {
		return spark.NewContext(spark.Config{Parallelism: 16, Executors: 8})
	}
	engines := []baselines.Engine{
		bench.NewRumble(rumble.Config{Parallelism: 16, Executors: 8, SplitSize: benchSplit / 2}),
		rawspark.New(sc(), benchSplit/2),
		sparksql.New(sc(), benchSplit/2),
		pyspark.New(sc(), benchSplit/2),
	}
	for _, q := range []baselines.Query{baselines.QueryFilter, baselines.QueryGroup, baselines.QuerySort} {
		for _, e := range engines {
			b.Run(fmt.Sprintf("%s/%s", q, e.Name()), func(b *testing.B) {
				benchEngineQuery(b, e, q, path)
			})
		}
	}
}

// BenchmarkFig14 is the speedup figure: the selective Reddit filter at
// increasing executor counts; simulated storage latency lets the overlap
// exceed the physical core count as on the paper's cluster.
func BenchmarkFig14(b *testing.B) {
	path := redditPath(b, 20_000)
	for _, executors := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("executors-%d", executors), func(b *testing.B) {
			eng := rumble.New(rumble.Config{
				Parallelism: 32, Executors: executors,
				SplitSize: 64 << 10, IOLatency: time.Millisecond,
			})
			q := fmt.Sprintf(`count(for $c in json-file(%q)
				where $c.score gt 1500 and contains($c.body, "data")
				return $c)`, path)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(q); err != nil {
					b.Fatal(err)
				}
			}
			m := eng.Metrics()
			b.ReportMetric(m.TaskTime.Seconds()/float64(b.N), "agg-task-s/op")
		})
	}
}

// BenchmarkFig15 is the scaling figure: the filter query at growing
// replication factors; ns/op must grow linearly with size.
func BenchmarkFig15(b *testing.B) {
	base := 10_000
	for _, scale := range []int{1, 2, 4} {
		n := base * scale
		path := redditPath(b, n)
		b.Run(fmt.Sprintf("scale-%dx", scale), func(b *testing.B) {
			eng := rumble.New(rumble.Config{Parallelism: 8, Executors: 4, SplitSize: benchSplit})
			q := fmt.Sprintf(`count(for $c in json-file(%q)
				where $c.subreddit eq "programming" and $c.score gt 100
				return $c)`, path)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_GroupByCountPushdown measures the §4.7 optimization:
// a group-by whose non-grouping variable is consumed only through count()
// (pushed down to COUNT()) versus one that must materialize the variable.
func BenchmarkAblation_GroupByCountPushdown(b *testing.B) {
	path := confusionPath(b, fig11Objects)
	eng := rumble.New(rumble.Config{Parallelism: 8, Executors: 4, SplitSize: benchSplit})
	cases := map[string]string{
		"count-only": fmt.Sprintf(`
			for $o in json-file(%q)
			group by $t := $o.target
			return { "t": $t, "n": count($o) }`, path),
		"materialized": fmt.Sprintf(`
			for $o in json-file(%q)
			group by $t := $o.target
			return { "t": $t, "n": count($o), "first": [ $o ][[1]].country }`, path),
	}
	for name, q := range cases {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_DataFrameVsLocal measures the value of the DataFrame
// execution path by running the same grouping query through the parallel
// plan and through the single-threaded local tuple pipeline.
func BenchmarkAblation_DataFrameVsLocal(b *testing.B) {
	path := confusionPath(b, fig11Objects)
	query := fmt.Sprintf(`
		for $o in json-file(%q)
		group by $c := $o.country, $t := $o.target
		return { "c": $c, "t": $t, "n": count($o) }`, path)
	b.Run("dataframe-parallel", func(b *testing.B) {
		eng := rumble.New(rumble.Config{Parallelism: 8, Executors: 4, SplitSize: benchSplit})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("local-tuple-stream", func(b *testing.B) {
		eng := rumble.New(rumble.Config{Parallelism: 8, Executors: 4, SplitSize: benchSplit})
		st, err := eng.Compile(query)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			if err := st.Stream(func(rumble.Item) error { n++; return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_JoinVsNestedLoop measures the statically detected
// hash join against the nested-loop fallback across sizes. The nested
// loop's time grows quadratically with n while the join's grows linearly,
// so the speedup widens superlinearly — compare the per-size sub-benchmark
// ratios.
func BenchmarkAblation_JoinVsNestedLoop(b *testing.B) {
	for _, n := range []int{1_000, 2_000, 4_000} {
		orders, customers, err := bench.JoinDataset(benchBase, n)
		if err != nil {
			b.Fatal(err)
		}
		query := bench.JoinQuery(orders, customers)
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"hash-join", false}, {"nested-loop", true}} {
			b.Run(fmt.Sprintf("n%d/%s", n, mode.name), func(b *testing.B) {
				eng := rumble.New(rumble.Config{Parallelism: 8, Executors: 4,
					SplitSize: benchSplit, DisableJoin: mode.disable})
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := eng.Query(query)
					if err != nil {
						b.Fatal(err)
					}
					if len(res) != 1 || int(res[0].(rumble.Int)) != n {
						b.Fatalf("join returned %v, want count %d", res, n)
					}
				}
			})
		}
	}
}

// BenchmarkAblation_VectorVsLocal measures the columnar local backend
// (Mode=Vector, --vectorize) against the tuple-at-a-time local pipeline on
// the figure-style grouped-aggregation and filter workloads. Both variants
// run through the streaming API, which always executes the statically
// chosen local backend, so the comparison isolates tuple interpretation
// overhead (per-tuple slice copies, per-tuple contexts, iterator dispatch)
// against batch-at-a-time execution over typed columns.
func BenchmarkAblation_VectorVsLocal(b *testing.B) {
	path := confusionPath(b, fig11Objects)
	queries := map[string]string{
		"group-agg": fmt.Sprintf(`
			for $o in json-file(%q)
			where $o.guess eq $o.target
			group by $t := $o.target
			return { "t": $t, "n": count($o) }`, path),
		"filter-project": fmt.Sprintf(`
			for $o in json-file(%q)
			where $o.guess eq $o.target
			return { "t": $o.target, "c": $o.country }`, path),
	}
	for qname, query := range queries {
		for _, mode := range []struct {
			name      string
			vectorize bool
		}{{"vector", true}, {"local-tuple", false}} {
			b.Run(fmt.Sprintf("%s/%s", qname, mode.name), func(b *testing.B) {
				eng := rumble.New(rumble.Config{Parallelism: 8, Executors: 4,
					SplitSize: benchSplit, Vectorize: mode.vectorize})
				st, err := eng.Compile(query)
				if err != nil {
					b.Fatal(err)
				}
				if mode.vectorize && st.Mode() != "Vector" {
					b.Fatalf("mode = %s, want Vector", st.Mode())
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					n := 0
					if err := st.Stream(func(rumble.Item) error { n++; return nil }); err != nil {
						b.Fatal(err)
					}
					if n == 0 {
						b.Fatal("empty result")
					}
				}
			})
		}
	}
}

// BenchmarkAblation_ParallelVectorVsVector measures morsel-driven parallel
// vector execution against the single-worker columnar path, sweeping the
// worker pool (Config.Executors) over 1/2/4/8 on the grouped-aggregation
// and filter-project workloads. As in Figure 14, simulated storage latency
// stands in for the cluster's I/O cost: the morsel workers own the scan's
// decode and its simulated round trips, so their overlap — not host core
// count — is what the sweep demonstrates, exactly the regime the paper's
// EMR measurements ran in. Recorded numbers live in
// BENCH_vector_parallel.json.
func BenchmarkAblation_ParallelVectorVsVector(b *testing.B) {
	path := confusionPath(b, fig11Objects)
	queries := map[string]string{
		"group-agg": fmt.Sprintf(`
			for $o in json-file(%q)
			where $o.guess eq $o.target
			group by $t := $o.target
			return { "t": $t, "n": count($o), "s": sum($o.score) }`, path),
		"filter-project": fmt.Sprintf(`
			for $o in json-file(%q)
			where $o.guess eq $o.target
			return { "t": $o.target, "c": $o.country, "s": $o.score * 2 }`, path),
	}
	for _, qname := range []string{"group-agg", "filter-project"} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers-%d", qname, workers), func(b *testing.B) {
				eng := rumble.New(rumble.Config{Parallelism: 8, Executors: workers,
					SplitSize: benchSplit, IOLatency: 2 * time.Millisecond, Vectorize: true})
				st, err := eng.Compile(queries[qname])
				if err != nil {
					b.Fatal(err)
				}
				if st.Mode() != "Vector" {
					b.Fatalf("mode = %s, want Vector", st.Mode())
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					n := 0
					if err := st.Stream(func(rumble.Item) error { n++; return nil }); err != nil {
						b.Fatal(err)
					}
					if n == 0 {
						b.Fatal("empty result")
					}
				}
			})
		}
	}
}

// BenchmarkAblation_VectorSortTopKJoin measures the columnar sort, the
// fused top-k and the vector hash join against their tuple-at-a-time
// counterparts. The top-k sweep runs the same bounded order-by three ways:
// fused into a columnar TopK operator that never materializes the tail
// (Vectorize on), as a full columnar sort of the same input (the bound
// removed, so every row is sorted and emitted), and through the tuple
// order-by + count + where pipeline (Vectorize off). The join case runs
// the count-wrapped equi-join through the vector probe pipeline and
// through the tuple hash join. Recorded numbers live in
// BENCH_vector_sort_join.json.
func BenchmarkAblation_VectorSortTopKJoin(b *testing.B) {
	path := confusionPath(b, fig11Objects)
	topK := fmt.Sprintf(`
		for $o in json-file(%q)
		order by $o.score descending, $o.target
		count $rank
		where $rank le 25
		return { "t": $o.target, "s": $o.score }`, path)
	fullSort := fmt.Sprintf(`
		for $o in json-file(%q)
		order by $o.score descending, $o.target
		return { "t": $o.target, "s": $o.score }`, path)
	run := func(b *testing.B, query string, vectorize bool, wantN int) {
		b.Helper()
		eng := rumble.New(rumble.Config{Parallelism: 8, Executors: 4,
			SplitSize: benchSplit, Vectorize: vectorize})
		st, err := eng.Compile(query)
		if err != nil {
			b.Fatal(err)
		}
		if vectorize && st.Mode() != "Vector" {
			b.Fatalf("mode = %s, want Vector", st.Mode())
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			if err := st.Stream(func(rumble.Item) error { n++; return nil }); err != nil {
				b.Fatal(err)
			}
			if n != wantN {
				b.Fatalf("result rows = %d, want %d", n, wantN)
			}
		}
	}
	b.Run("topk/fused-vector", func(b *testing.B) { run(b, topK, true, 25) })
	b.Run("topk/full-sort-vector", func(b *testing.B) { run(b, fullSort, true, fig11Objects) })
	b.Run("topk/tuple", func(b *testing.B) { run(b, topK, false, 25) })

	const joinOrders = 4_000
	orders, customers, err := bench.JoinDataset(benchBase, joinOrders)
	if err != nil {
		b.Fatal(err)
	}
	joinQuery := bench.JoinQuery(orders, customers)
	b.Run("join/vector", func(b *testing.B) { run(b, joinQuery, true, 1) })
	b.Run("join/tuple-hash", func(b *testing.B) { run(b, joinQuery, false, 1) })
}

// BenchmarkAblation_ProfilingOverhead pins the cost of the per-operator
// instrumentation threaded through every backend for explain-analyze and
// the server's profile=1 mode. Three variants of the same grouped
// aggregation: the plain collection path (no profiling parameter at all),
// the profiled entry point with profiling off (nil profile — the
// production default, whose overhead budget is <3%: one nil check per
// operator evaluation), and a live profile allocated per run. CI runs
// this at -benchtime=1x to keep the instrumentation compiling and
// recording; the off-vs-plain comparison is the overhead ablation.
func BenchmarkAblation_ProfilingOverhead(b *testing.B) {
	path := confusionPath(b, fig11Objects)
	query := fmt.Sprintf(`
		for $o in json-file(%q)
		where $o.guess eq $o.target
		group by $t := $o.target
		return { "t": $t, "n": count($o), "s": sum($o.score) }`, path)
	eng := rumble.New(rumble.Config{Parallelism: 8, Executors: 4,
		SplitSize: benchSplit, Vectorize: true})
	st, err := eng.Compile(query)
	if err != nil {
		b.Fatal(err)
	}
	if st.Mode() != "Vector" {
		b.Fatalf("mode = %s, want Vector", st.Mode())
	}
	ctx := context.Background()
	run := func(b *testing.B, collect func() ([]rumble.Item, error)) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			items, err := collect()
			if err != nil {
				b.Fatal(err)
			}
			if len(items) == 0 {
				b.Fatal("empty result")
			}
		}
	}
	b.Run("plain", func(b *testing.B) {
		run(b, func() ([]rumble.Item, error) { return st.Collect() })
	})
	b.Run("profiling-off", func(b *testing.B) {
		run(b, func() ([]rumble.Item, error) { return st.CollectProfiled(ctx, 0, nil) })
	})
	b.Run("profiling-on", func(b *testing.B) {
		run(b, func() ([]rumble.Item, error) { return st.CollectProfiled(ctx, 0, st.NewProfile()) })
	})
}

// sortedScanPath writes (once) an n-row JSON-Lines dataset sorted by its
// "v" field and pre-ingests its segment sibling, so the segment-scan
// ablation never pays the one-time ingest inside a timed region.
func sortedScanPath(b *testing.B, n int) string {
	b.Helper()
	key := fmt.Sprintf("sortedscan-%d", n)
	if p, ok := datasetOnce.Load(key); ok {
		return p.(string)
	}
	dir := filepath.Join(benchBase, key)
	path := filepath.Join(dir, "data.jsonl")
	if _, err := os.Stat(path); err != nil {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, `{"g": %d, "v": %d}`+"\n", i%7, i)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := segment.OpenDataset(path); err != nil {
		if err := segment.Ingest(path); err != nil {
			b.Fatal(err)
		}
	}
	datasetOnce.Store(key, path)
	return path
}

// BenchmarkAblation_SegmentVsJSONScan measures the columnar segment store
// against the raw JSON-Lines scan it replaces, on a storage-bound grouped
// aggregation (simulated storage latency per 64 KiB block, as in the
// parallel-vector ablation). Three segment regimes bracket the design:
// cold (a fresh engine per run: every segment decodes once, charged its
// file's blocks), hot (the buffer pool already resident: no parse, no
// decode, no storage round trips), and zone-map-pruned (a selective
// predicate over the sorted field: irrelevant segments are skipped from
// metadata alone, so even a cold scan touches a fraction of the data).
// Recorded numbers live in BENCH_segment_store.json.
func BenchmarkAblation_SegmentVsJSONScan(b *testing.B) {
	const rows = 200_000
	path := sortedScanPath(b, rows)
	groupQ := fmt.Sprintf(`
		for $o in json-file(%q)
		group by $g := $o.g
		return { "g": $g, "n": count($o), "s": sum($o.v) }`, path)
	prunedQ := fmt.Sprintf(`
		for $o in json-file(%q)
		where $o.v ge %d
		group by $g := $o.g
		return { "g": $g, "n": count($o), "s": sum($o.v) }`, path, rows-rows/20)

	newEng := func(segments bool) *rumble.Engine {
		return rumble.New(rumble.Config{Parallelism: 8, Executors: 4, SplitSize: benchSplit,
			IOLatency: 2 * time.Millisecond, Vectorize: true, Segments: segments})
	}
	run := func(b *testing.B, eng *rumble.Engine, query string) {
		b.Helper()
		st, err := eng.Compile(query)
		if err != nil {
			b.Fatal(err)
		}
		if st.Mode() != "Vector" {
			b.Fatalf("mode = %s, want Vector", st.Mode())
		}
		n := 0
		if err := st.Stream(func(rumble.Item) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("empty result")
		}
	}
	b.Run("group-agg/json-scan", func(b *testing.B) {
		eng := newEng(false)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, eng, groupQ)
		}
	})
	b.Run("group-agg/segment-cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, newEng(true), groupQ) // fresh buffer pool every run
		}
	})
	b.Run("group-agg/segment-hot", func(b *testing.B) {
		eng := newEng(true)
		run(b, eng, groupQ) // populate the buffer pool
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, eng, groupQ)
		}
	})
	b.Run("pruned/json-scan", func(b *testing.B) {
		eng := newEng(false)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, eng, prunedQ)
		}
	})
	b.Run("pruned/segment-zonemap", func(b *testing.B) {
		// Cold engine per run, like segment-cold: the point is that zone
		// maps spare the decode itself, not just the re-read.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := newEng(true)
			run(b, eng, prunedQ)
			if m := eng.Metrics(); m.SegmentsSkipped == 0 {
				b.Fatal("no segments skipped — zone-map pruning never engaged")
			}
		}
	})
}

// laneScanPath writes (once) an n-row dataset with dictionary-friendly
// string columns and two untouched padding fields, then pre-ingests its
// segment sibling. The padding is what column-projection pushdown skips;
// the low-cardinality strings are what the dictionary lanes compress.
func laneScanPath(b *testing.B, n int) string {
	b.Helper()
	key := fmt.Sprintf("lanescan-%d", n)
	if p, ok := datasetOnce.Load(key); ok {
		return p.(string)
	}
	dir := filepath.Join(benchBase, key)
	path := filepath.Join(dir, "data.jsonl")
	if _, err := os.Stat(path); err != nil {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, `{"g": "g%02d", "s": "s%03d", "v": %d, "pad1": "padding-%d-padding", "pad2": %d}`+"\n",
				i%40, i%97, i, i, i*3)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := segment.OpenDataset(path); err != nil {
		if err := segment.Ingest(path); err != nil {
			b.Fatal(err)
		}
	}
	datasetOnce.Store(key, path)
	return path
}

// BenchmarkAblation_LaneScanVsItemScan measures the lane-native segment
// scan (decode straight into vector batches, dictionary string lanes,
// column projection) against the item-at-a-time segment path it replaces
// (Config.NoLaneScan), both hot in the buffer pool so the comparison is
// pure decode-and-kernel work. Two shapes from the acceptance criteria: a
// grouped aggregation over a string key and a string-equality predicate
// scan, each touching 3 of the dataset's 5 columns. Recorded numbers live
// in BENCH_lane_scan.json.
func BenchmarkAblation_LaneScanVsItemScan(b *testing.B) {
	const rows = 200_000
	path := laneScanPath(b, rows)
	groupQ := fmt.Sprintf(`
		for $o in json-file(%q)
		group by $g := $o.g
		return { "g": $g, "n": count($o), "s": sum($o.v) }`, path)
	predQ := fmt.Sprintf(`
		for $o in json-file(%q)
		where $o.s eq "s042"
		return { "g": $o.g, "v": $o.v }`, path)

	newEng := func(noLane bool) *rumble.Engine {
		return rumble.New(rumble.Config{Parallelism: 8, Executors: 4, SplitSize: benchSplit,
			IOLatency: 2 * time.Millisecond, Vectorize: true, Segments: true, NoLaneScan: noLane})
	}
	run := func(b *testing.B, eng *rumble.Engine, query string) {
		b.Helper()
		st, err := eng.Compile(query)
		if err != nil {
			b.Fatal(err)
		}
		if st.Mode() != "Vector" {
			b.Fatalf("mode = %s, want Vector", st.Mode())
		}
		n := 0
		if err := st.Stream(func(rumble.Item) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("empty result")
		}
	}
	for _, bc := range []struct {
		name, query string
	}{
		{"group-agg", groupQ},
		{"string-pred", predQ},
	} {
		for _, lane := range []struct {
			name   string
			noLane bool
		}{
			{"item", true},
			{"lane", false},
		} {
			b.Run(bc.name+"/"+lane.name, func(b *testing.B) {
				eng := newEng(lane.noLane)
				run(b, eng, bc.query) // populate the buffer pool
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					run(b, eng, bc.query)
				}
				b.StopTimer()
				if m := eng.Metrics(); m.SegmentsRead == 0 {
					b.Fatal("no segments read — scan never hit the segment store")
				}
			})
		}
	}
}

// BenchmarkQueryCompilation isolates the frontend: lexing, parsing, static
// analysis and iterator construction of a realistic query.
func BenchmarkQueryCompilation(b *testing.B) {
	eng := rumble.New(rumble.Config{})
	query := `
	for $person in parallelize(())
	where $person.age le 65
	group by $pos := $person.position
	let $count := count($person)
	order by $count descending
	return { "position" : $pos, "count" : $count }`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Compile(query); err != nil {
			b.Fatal(err)
		}
	}
}

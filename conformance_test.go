package rumble

import (
	"strings"
	"testing"
)

// conformanceCase is one spec-behaviour check: a query and either its
// expected serialized output lines (joined with \n) or wantErr.
type conformanceCase struct {
	query   string
	want    string
	wantErr bool
}

// conformanceCases is the JSONiq-spec conformance table. It is package
// level so other tests can reuse it as a corpus of known-good queries —
// the plan verifier runs over every entry in TestConformancePlansVerify.
var conformanceCases = map[string]conformanceCase{
	// --- sequences are flat and never nest ---
	"sequence flattening":        {query: `((1, 2), (3, (4, 5)))`, want: "1\n2\n3\n4\n5"},
	"empty in sequence vanishes": {query: `(1, (), 2)`, want: "1\n2"},
	"single item is sequence":    {query: `count(42)`, want: "1"},

	// --- arithmetic typing ---
	"int plus int is int":          {query: `(1 + 2) instance of integer`, want: "true"},
	"int div int is decimal":       {query: `(1 div 2) instance of decimal`, want: "true"},
	"int plus double is double":    {query: `(1 + 0.5e0) instance of double`, want: "true"},
	"int plus decimal is decimal":  {query: `(1 + 0.5) instance of decimal`, want: "true"},
	"idiv result is integer":       {query: `(7 idiv 2) instance of integer`, want: "true"},
	"mod sign follows dividend":    {query: `(-7 mod 2, 7 mod -2)`, want: "-1\n1"},
	"decimal arithmetic exact":     {query: `0.1 + 0.2 eq 0.3`, want: "true"},
	"double arithmetic inexact ok": {query: `0.1e0 + 0.2e0 ne 0.3e0`, want: "true"},

	// --- comparison semantics ---
	"value comparison empty propagates": {query: `count(() eq 1)`, want: "0"},
	"general comparison existential":    {query: `(1, 2, 3) = 2`, want: "true"},
	"general comparison all fail":       {query: `(1, 2, 3) = 9`, want: "false"},
	"general comparison empty is false": {query: `() = ()`, want: "false"},
	"value comparison two items errors": {query: `(1, 2) eq 1`, wantErr: true},
	"cross numeric equality":            {query: `1 eq 1.0`, want: "true"},
	"string number not comparable":      {query: `"1" eq 1`, wantErr: true},
	"general string number no match":    {query: `("1", "2") = 1`, want: "false"},

	// --- null semantics ---
	"null equals null":       {query: `null eq null`, want: "true"},
	"null less than number":  {query: `null lt -999999`, want: "true"},
	"null less than string":  {query: `null lt ""`, want: "true"},
	"null EBV is false":      {query: `boolean(null)`, want: "false"},
	"null arithmetic errors": {query: `null + 1`, wantErr: true},

	// --- effective boolean value ---
	"ebv empty false":        {query: `boolean(())`, want: "false"},
	"ebv zero false":         {query: `boolean(0)`, want: "false"},
	"ebv nan false":          {query: `boolean(number("x"))`, want: "false"},
	"ebv empty string false": {query: `boolean("")`, want: "false"},
	"ebv object true":        {query: `boolean({})`, want: "true"},
	"ebv empty array true":   {query: `boolean([])`, want: "true"},
	"ebv multi-atomic error": {query: `boolean((1, 2))`, wantErr: true},

	// --- object semantics ---
	"object value empty to null":  {query: `{"k": ()}.k`, want: "null"},
	"object value multi to array": {query: `{"k": (1, 2)}.k instance of array`, want: "true"},
	"dynamic key must be atomic":  {query: `{[1]: 2}`, wantErr: true},
	"lookup chains through array": {query: `[{"a": 1}, {"a": 2}][].a`, want: "1\n2"},
	"lookup key from variable":    {query: `let $k := "x" return {"x": 9}.$k`, want: "9"},
	"quoted lookup key":           {query: `{"strange key": 1}."strange key"`, want: "1"},

	// --- array semantics ---
	"array lookup one-based":    {query: `["a", "b"][[1]]`, want: `"a"`},
	"array lookup out of range": {query: `count(["a"][[5]])`, want: "0"},
	"array lookup on non-array": {query: `count((5)[[1]])`, want: "0"},
	"unbox non-array skipped":   {query: `count((1, [2, 3], "x")[])`, want: "2"},
	"nested array preserved":    {query: `[[1, 2]][[1]] instance of array`, want: "true"},
	"array of empty sequence":   {query: `size([()])`, want: "0"},

	// --- predicates ---
	"predicate boolean":             {query: `(1 to 5)[$$ gt 3]`, want: "4\n5"},
	"predicate positional":          {query: `("a", "b", "c")[2]`, want: `"b"`},
	"predicate position arithmetic": {query: `(1 to 10)[$$ mod 2 eq 0][2]`, want: "4"},
	"predicate empty result":        {query: `count((1 to 5)[$$ gt 99])`, want: "0"},

	// --- strings ---
	"concat operator empty as blank": {query: `() || "x" || ()`, want: `"x"`},
	"concat numbers stringify":       {query: `1 || 2`, want: `"12"`},
	"substring negative start":       {query: `substring("hello", 0, 2)`, want: `"h"`},
	"string-join default sep":        {query: `string-join(("a", "b"))`, want: `"ab"`},

	// --- FLWOR semantics ---
	"for over empty produces nothing": {query: `count(for $x in () return $x)`, want: "0"},
	"let binds whole sequence":        {query: `let $s := (1, 2, 3) return count($s)`, want: "3"},
	"for iterates items":              {query: `for $s in (1, 2, 3) return count($s)`, want: "1\n1\n1"},
	"where before group":              {query: `for $x in (1, 2, 3, 4) where $x gt 2 group by $k := $x mod 2 order by $k return count($x)`, want: "1\n1"},
	"order by stable ties":            {query: `for $p at $i in ("b", "a", "c") order by 1 return $i`, want: "1\n2\n3"},
	"count after where renumbers":     {query: `for $x in (5, 6, 7, 8) where $x mod 2 eq 0 count $c return $c`, want: "1\n2"},
	"group key empty sequence":        {query: `for $o in ({"k": 1}, {}) group by $k := $o.k order by $k empty least return count($o)`, want: "1\n1"},
	"allowing empty binds empty":      {query: `for $x allowing empty in () return count($x)`, want: "0"},
	"positional at starts at one":     {query: `for $x at $i in ("z") return $i`, want: "1"},
	"nested flwor independent":        {query: `for $x in (1, 2) return count(for $y in (1 to $x) return $y)`, want: "1\n2"},

	// --- statically detected equi-joins (broadcast: both sides are
	// parallelize literals; output keeps the nested loop's left-major
	// order because the big side streams in place) ---
	"equi-join matches keys": {
		query: `for $a in parallelize(({"k": 1, "v": "x"}, {"k": 2, "v": "y"}, {"k": 3, "v": "z"}))
			        for $b in parallelize(({"k": 2, "w": "p"}, {"k": 3, "w": "q"}))
			        where $a.k eq $b.k
			        return $a.v || $b.w`,
		want: "\"yp\"\n\"zq\""},
	"equi-join null keys match": {
		query: `for $a in parallelize(({"k": null, "v": 1}, {"k": 9, "v": 2}))
			        for $b in parallelize(({"k": null, "w": 10}))
			        where $a.k eq $b.k
			        return $a.v + $b.w`,
		want: "11"},
	"equi-join absent key joins nothing": {
		query: `count(for $a in parallelize(({"v": 1}, {"k": 2, "v": 2}))
			        for $b in parallelize(({"k": 2}))
			        where $a.k eq $b.k
			        return $a)`,
		want: "1"},
	"equi-join cross-numeric keys": {
		query: `for $a in parallelize(({"k": 2, "v": "int"}))
			        for $b in parallelize(({"k": 2.0e0, "w": "dbl"}))
			        where $a.k eq $b.k
			        return $a.v || $b.w`,
		want: `"intdbl"`},
	"equi-join mixed key types error": {
		query: `for $a in parallelize(({"k": 1}, {"k": "s"}))
			        for $b in parallelize(({"k": 1}))
			        where $a.k eq $b.k
			        return $a`,
		wantErr: true},

	// --- quantifiers ---
	"some over empty false": {query: `some $x in () satisfies true`, want: "false"},
	"every over empty true": {query: `every $x in () satisfies false`, want: "true"},

	// --- conditionals ---
	"if condition ebv":        {query: `if ("") then 1 else 2`, want: "2"},
	"switch on empty matches": {query: `switch (()) case () return "empty" default return "no"`, want: `"empty"`},
	"switch deep equal case":  {query: `switch (1.0) case 1 return "one" default return "no"`, want: `"one"`},
	"switch multi-item error": {query: `switch ((1, 2)) case 1 return 1 default return 2`, wantErr: true},

	// --- try/catch ---
	"catch binds description":  {query: `try { error("xyz") } catch * { contains($err:description, "xyz") }`, want: "true"},
	"no error passes through":  {query: `try { "fine" } catch * { "caught" }`, want: `"fine"`},
	"static errors not caught": {query: `try { $undefined } catch * { "caught" }`, wantErr: true},

	// --- types ---
	"instance of star":        {query: `() instance of integer*`, want: "true"},
	"instance of plus empty":  {query: `() instance of integer+`, want: "false"},
	"instance of optional":    {query: `() instance of integer?`, want: "true"},
	"integer is decimal":      {query: `1 instance of decimal`, want: "true"},
	"decimal not integer":     {query: `1.5 instance of integer`, want: "false"},
	"castable empty false":    {query: `() castable as integer`, want: "false"},
	"cast boolean to integer": {query: `true cast as integer`, want: "1"},
	"cast string roundtrip":   {query: `("42" cast as integer) cast as string`, want: `"42"`},
	"treat failure":           {query: `(1, 2) treat as integer`, wantErr: true},

	// --- simple map ---
	"simple map context":    {query: `(1, 2) ! ($$ * $$)`, want: "1\n4"},
	"simple map flattening": {query: `count((1, 2) ! (1 to $$))`, want: "3"},

	// --- functions ---
	"count of nested flwor":  {query: `count(for $i in 1 to 3 for $j in 1 to $i return $j)`, want: "6"},
	"sum of empty zero":      {query: `sum(())`, want: "0"},
	"avg of empty empty":     {query: `count(avg(()))`, want: "0"},
	"min heterogeneous errs": {query: `min((1, "a"))`, wantErr: true},
	"json-doc parses deep":   {query: `json-doc("[1, {\"a\": [true]}]")[[2]].a[[1]]`, want: "true"},
	"serialize round trips":  {query: `json-doc(serialize({"x": [1, null]})).x[[2]]`, want: "null"},

	// --- recursion / prolog ---
	"fibonacci udf": {query: `
			declare function local:fib($n) {
			  if ($n le 1) then $n else local:fib($n - 1) + local:fib($n - 2)
			};
			local:fib(15)`, want: "610"},
	"mutual recursion": {query: `
			declare function local:even($n) { if ($n eq 0) then true else local:odd($n - 1) };
			declare function local:odd($n) { if ($n eq 0) then false else local:even($n - 1) };
			local:even(10)`, want: "true"},
	"global sees earlier global": {query: `
			declare variable $a := 2;
			declare variable $b := $a * 3;
			$b`, want: "6"},

	// --- integer edge cases ---
	"max int literal":      {query: `9223372036854775807`, want: "9223372036854775807"},
	"overflow to decimal":  {query: `9223372036854775807 + 1`, want: "9223372036854775808"},
	"huge literal decimal": {query: `99999999999999999999999999`, want: "99999999999999999999999999"},

	// --- comments and whitespace ---
	"comment in flwor": {query: `for (: loop :) $x in (1) return (: out :) $x`, want: "1"},
}

// TestConformance runs a JSONiq-spec conformance table through the public
// API. Each case exercises a distinct language behaviour.
func TestConformance(t *testing.T) {
	e := newTestEngine()
	for name, c := range conformanceCases {
		t.Run(name, func(t *testing.T) {
			out, err := e.QueryJSON(c.query)
			if c.wantErr {
				if err == nil {
					t.Fatalf("query %s should fail, got %v", c.query, out)
				}
				return
			}
			if err != nil {
				t.Fatalf("query failed: %v\n%s", err, c.query)
			}
			if got := strings.Join(out, "\n"); got != c.want {
				t.Errorf("got:\n%s\nwant:\n%s\nquery: %s", got, c.want, c.query)
			}
		})
	}
}

package rumble

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// explainGoldens pins the execution-mode assignment of representative
// queries, including the paper's example shapes: the plans live in
// testdata/explain/*.golden. Regenerate with UPDATE_GOLDEN=1 go test -run
// TestExplainGolden .
var explainGoldens = []struct {
	name  string
	query string
}{
	{"local-arith", `1 + 2 * 3`},
	{"local-flwor", `for $x in (1, 2, 3) let $y := $x * $x return $y`},
	{"rdd-source-paths", `json-file("reddit.jsonl").comments[].body`},
	{"rdd-filter-predicate", `json-file("reddit.jsonl")[$$.score gt 1500]`},
	{"rdd-union", `(json-file("a.jsonl"), json-file("b.jsonl"))`},
	{"mixed-comma-degrades", `(1, json-file("a.jsonl"))`},
	{"aggregate-pushdown", `count(for $c in json-file("reddit.jsonl")
		where $c.score gt 1500 and contains($c.body, "data")
		return $c)`},
	{"df-groupby-count", `for $o in json-file("confusion.jsonl")
		where $o.guess eq $o.target
		group by $lang := $o.target
		return { "language": $lang, "correct": count($o) }`},
	{"df-orderby-count-clause", `for $x at $i in parallelize(1 to 1000, 8)
		order by $x descending
		count $c
		return ($c, $x, $i)`},
	{"leading-let-local", `let $min := 100 return
		for $c in json-file("reddit.jsonl")
		where $c.score ge $min
		return $c.body`},
	{"let-rdd-cached", `let $c := json-file("confusion.jsonl")
		return { "total": count($c), "exact": count($c[$$.guess eq $$.target]) }`},
	{"let-rdd-df-head", `let $d := json-file("reddit.jsonl")
		for $x in $d
		where $x.score ge 100
		return $x.body`},
	{"prolog-udf", `declare variable $threshold := 10;
		declare function local:hot($c) { $c.score ge $threshold };
		for $c in json-file("reddit.jsonl")
		where local:hot($c)
		return $c`},
	{"distinct-if-switch", `if (exists(json-file("a.jsonl")))
		then distinct-values(json-file("a.jsonl").lang)
		else ()`},
	{"switch-try-quantified", `try {
		switch (1) case 1 case 2 return "low" default return "high"
		} catch * { every $x in (1, 2) satisfies $x gt 0 }`},
	{"join-hash", `for $o in json-file("orders.jsonl")
		for $c in json-file("customers.jsonl")
		where $o.cust eq $c.cid
		return { "oid": $o.oid, "name": $c.name }`},
	{"join-broadcast-residual", `for $o in json-file("orders.jsonl")
		for $c in parallelize(({"cid": 10, "name": "ada"}, {"cid": 11, "name": "bob"}))
		where $o.cust eq $c.cid and $o.amount gt 5
		order by $o.oid
		return { "oid": $o.oid, "name": $c.name }`},
	{"join-fallback-nested-loop", `for $o in json-file("orders.jsonl")
		for $c in json-file("customers.jsonl")
		where $o.cust eq $c.cid or $o.oid eq $c.cid
		return $o`},
}

func TestExplainGolden(t *testing.T) {
	eng := New(Config{})
	for _, tc := range explainGoldens {
		t.Run(tc.name, func(t *testing.T) {
			checkExplainGolden(t, eng, tc.name, tc.query)
		})
	}
}

// checkExplainGolden compares (or with UPDATE_GOLDEN=1 rewrites) one
// query's plan against testdata/explain/<name>.golden.
func checkExplainGolden(t *testing.T, eng *Engine, name, query string) {
	t.Helper()
	got, err := eng.Explain(query)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	path := filepath.Join("testdata", "explain", name+".golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("plan drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// vectorExplainGoldens pin backend selection under Config{Vectorize: true}:
// eligible pipelines flip to Mode=Vector (overriding both Local and
// DataFrame), ineligible shapes keep their old modes.
var vectorExplainGoldens = []struct {
	name  string
	query string
}{
	{"vector-groupby-agg", `for $o in json-file("confusion.jsonl")
		where $o.guess eq $o.target
		group by $lang := $o.target
		return { "language": $lang, "correct": count($o), "score": sum($o.score) }`},
	{"vector-filter-project", `for $c in json-file("reddit.jsonl")
		let $boost := $c.score * 2
		where $boost gt 3000 and contains($c.body, "data")
		return { "id": $c.id, "boost": $boost }`},
	{"vector-let-rdd-head", `let $d := json-file("reddit.jsonl")
		for $x in $d
		where $x.score ge 100
		return $x.body`},
	{"vector-grand-agg", `sum(for $o in json-file("confusion.jsonl")
		where $o.guess eq $o.target
		return $o.score)`},
	{"vector-orderby", `for $o in json-file("confusion.jsonl")
		order by $o.target
		return $o.target`},
	{"vector-topk", `for $o in json-file("confusion.jsonl")
		order by $o.score descending, $o.target
		count $rank where $rank le 25
		return { "t": $o.target, "s": $o.score }`},
	{"vector-join", `for $o in json-file("orders.jsonl")
		for $c in json-file("customers.jsonl")
		where $o.cust eq $c.cid
		return { "oid": $o.oid, "name": $c.name }`},
	{"vector-ineligible-orderby-after-group", `for $o in json-file("confusion.jsonl")
		group by $t := $o.target
		order by $t
		return $t`},
	{"vector-prune", `for $o in json-file("events.jsonl")
		where $o.ts ge 1700000000 and $o.kind eq "click"
		return { "ts": $o.ts, "user": $o.user }`},
}

func TestExplainVectorGolden(t *testing.T) {
	eng := New(Config{Vectorize: true})
	for _, tc := range vectorExplainGoldens {
		t.Run(tc.name, func(t *testing.T) {
			checkExplainGolden(t, eng, tc.name, tc.query)
		})
	}
}

// TestExplainVectorModesPinned asserts the vectorized mode choices in code
// so regenerated goldens cannot silently flip a backend decision. Vector
// roots carry the morsel worker-pool size (the default engine holds 4
// executor slots).
func TestExplainVectorModesPinned(t *testing.T) {
	eng := New(Config{Vectorize: true})
	wantRootMode := map[string]string{
		"vector-groupby-agg":    "[Vector x4]",
		"vector-filter-project": "[Vector x4]",
		"vector-let-rdd-head":   "[Vector x4]",
		"vector-grand-agg":      "[Vector x4]",
		"vector-orderby":        "[Vector x4]",
		"vector-topk":           "[Vector x4]",
		"vector-join":           "[Vector x4]",
		// order-by after group-by stays outside the vector grammar.
		"vector-ineligible-orderby-after-group": "[DataFrame]",
		"vector-prune":                          "[Vector x4]",
	}
	for _, tc := range vectorExplainGoldens {
		plan := mustExplain(t, eng, tc.query)
		var rootLine string
		for _, line := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
			if !strings.HasPrefix(line, " ") {
				rootLine = line
			}
		}
		if want := wantRootMode[tc.name]; !strings.HasSuffix(rootLine, want) {
			t.Errorf("%s: root %q, want mode %s", tc.name, rootLine, want)
		}
	}
	// The vectorized plans carry their physical operators: a columnar Sort,
	// a fused bounded TopK, and the hash join consumed by the vector head.
	wantOperator := map[string]string{
		"vector-orderby": "Sort",
		"vector-topk":    "TopK(25)",
		"vector-join":    "Join[hash] for $o, for $c",
		// The compiler pushes the prunable where prefix onto the scan.
		"vector-prune": `zone-map prune: ts ge 1700000000 and kind eq "click"`,
	}
	for _, tc := range vectorExplainGoldens {
		want, pinned := wantOperator[tc.name]
		if !pinned {
			continue
		}
		if plan := mustExplain(t, eng, tc.query); !strings.Contains(plan, want) {
			t.Errorf("%s: plan lacks %q:\n%s", tc.name, want, plan)
		}
	}
	// A fused top-k consumes its count clause: the bound lives in the
	// operator, not in a clause line.
	if plan := mustExplain(t, eng, vectorExplainGoldens[5].query); strings.Contains(plan, "count $rank") {
		t.Errorf("vector-topk: fused count clause still rendered:\n%s", plan)
	}
	// Without the option, the same aggregation query stays a DataFrame.
	plain := New(Config{})
	if plan := mustExplain(t, plain, vectorExplainGoldens[0].query); !strings.Contains(plan, "flwor [DataFrame]") {
		t.Errorf("vectorize off: aggregation query not a DataFrame plan:\n%s", plan)
	}
}

// TestExplainModesPinned asserts the headline mode of each golden query
// directly in code, so a regenerated golden cannot silently flip a mode.
func TestExplainModesPinned(t *testing.T) {
	wantRootMode := map[string]string{
		"local-arith":               "[Local]",
		"local-flwor":               "[Local]",
		"rdd-source-paths":          "[RDD]",
		"rdd-filter-predicate":      "[RDD]",
		"rdd-union":                 "[RDD]",
		"mixed-comma-degrades":      "[Local]",
		"aggregate-pushdown":        "[Local]", // scalar result; pushdown marked
		"df-groupby-count":          "[DataFrame]",
		"df-orderby-count-clause":   "[DataFrame]",
		"leading-let-local":         "[Local]",
		"let-rdd-cached":            "[Local]", // scalar envelope; the let binds an RDD
		"let-rdd-df-head":           "[DataFrame]",
		"prolog-udf":                "[DataFrame]",
		"distinct-if-switch":        "[RDD]",
		"switch-try-quantified":     "[Local]",
		"join-hash":                 "[DataFrame]",
		"join-broadcast-residual":   "[DataFrame]",
		"join-fallback-nested-loop": "[DataFrame]",
	}
	eng := New(Config{})
	for _, tc := range explainGoldens {
		plan, err := eng.Explain(tc.query)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		// The root expression is the last top-level (unindented) line.
		var rootLine string
		for _, line := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
			if !strings.HasPrefix(line, " ") {
				rootLine = line
			}
		}
		if want := wantRootMode[tc.name]; !strings.HasSuffix(rootLine, want) {
			t.Errorf("%s: root %q, want mode %s", tc.name, rootLine, want)
		}
	}
	if !strings.Contains(mustExplain(t, eng, explainGoldens[6].query), "(cluster pushdown)") {
		t.Error("aggregate pushdown not marked in plan")
	}
}

// TestExplainJoinStrategyPinned asserts the join strategy choice of the
// join goldens in code, so a regenerated golden cannot silently change the
// physical join operator.
func TestExplainJoinStrategyPinned(t *testing.T) {
	eng := New(Config{})
	wantContains := map[string]string{
		"join-hash":               "Join[hash] for $o, for $c",
		"join-broadcast-residual": "Join[broadcast] for $o, for $c (build: right)",
	}
	for _, tc := range explainGoldens {
		want, pinned := wantContains[tc.name]
		if !pinned {
			continue
		}
		if plan := mustExplain(t, eng, tc.query); !strings.Contains(plan, want) {
			t.Errorf("%s: plan lacks %q:\n%s", tc.name, want, plan)
		}
	}
	// The fallback query must keep its nested-loop shape.
	for _, tc := range explainGoldens {
		if tc.name != "join-fallback-nested-loop" {
			continue
		}
		if plan := mustExplain(t, eng, tc.query); strings.Contains(plan, "Join[") {
			t.Errorf("fallback query unexpectedly joined:\n%s", plan)
		}
	}
}

func mustExplain(t *testing.T, eng *Engine, q string) string {
	t.Helper()
	plan, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestExplainStatementModeAgree(t *testing.T) {
	// The mode Explain prints for the root must match what the compiled
	// statement actually carries.
	eng := New(Config{})
	for _, tc := range []struct {
		query string
		mode  string
	}{
		{`1 + 1`, "Local"},
		{`parallelize(1 to 10)`, "RDD"},
		{`for $x in parallelize(1 to 10) return $x`, "DataFrame"},
	} {
		st, err := eng.Compile(tc.query)
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		if st.Mode() != tc.mode {
			t.Errorf("%s: Statement.Mode = %s, want %s", tc.query, st.Mode(), tc.mode)
		}
		if st.IsParallel() != (tc.mode != "Local") {
			t.Errorf("%s: IsParallel = %v inconsistent with mode %s", tc.query, st.IsParallel(), tc.mode)
		}
	}
}

func TestExplainParseError(t *testing.T) {
	eng := New(Config{})
	if _, err := eng.Explain(`for $x in`); err == nil {
		t.Error("Explain of a malformed query should error")
	}
	if _, err := eng.Explain(`$unbound`); err == nil {
		t.Error("Explain of a statically invalid query should error")
	}
}

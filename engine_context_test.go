package rumble

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestQueryContextDeadline pins that a deadline aborts a long evaluation
// promptly with context.DeadlineExceeded instead of running to completion.
func TestQueryContextDeadline(t *testing.T) {
	eng := New(Config{Parallelism: 4, Executors: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := eng.QueryContext(ctx, `sum(parallelize(1 to 200000000))`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v, checkpoints are not firing", d)
	}
}

// TestQueryContextCancelLocalPath covers the local tuple pipeline: the
// for clause's cancellation checkpoint must abort a pre-cancelled run.
func TestQueryContextCancelLocalPath(t *testing.T) {
	eng := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.QueryContext(ctx, `
		let $n := 100000
		for $x in 1 to $n
		where $x mod 7 eq 0
		return $x`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
}

// TestCollectContextNilAndDone: a nil context must behave exactly like
// Collect, and a live context must not change results.
func TestCollectContextNilAndDone(t *testing.T) {
	eng := New(Config{Parallelism: 2, Executors: 2})
	st, err := eng.Compile(`for $x in parallelize(1 to 10) return $x * $x`)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := st.Collect()
	if err != nil {
		t.Fatal(err)
	}
	nilCtx, err := st.CollectContext(nil)
	if err != nil {
		t.Fatal(err)
	}
	live, err := st.CollectContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 10 || len(nilCtx) != 10 || len(live) != 10 {
		t.Fatalf("lengths: %d %d %d", len(plain), len(nilCtx), len(live))
	}
	for i := range plain {
		if plain[i] != nilCtx[i] || plain[i] != live[i] {
			t.Fatalf("results diverge at %d", i)
		}
	}
}

// TestStreamContextCancel pins cancellation on the streaming API.
func TestStreamContextCancel(t *testing.T) {
	eng := New(Config{})
	st, err := eng.Compile(`for $x in 1 to 100000000 return $x`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err = st.StreamContext(ctx, func(Item) error {
		if n++; n == 100 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if n > 100000 {
		t.Errorf("streamed %d items after cancellation", n)
	}
}

// TestContextErrorNotCatchable: a cancellation must unwind through
// try/catch — it is a control-flow error, not a JSONiq dynamic error.
func TestContextErrorNotCatchable(t *testing.T) {
	eng := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.QueryContext(ctx, fmt.Sprintf(`
		try { for $x in 1 to %d return $x } catch * { "swallowed" }`, 1000000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("try/catch swallowed the cancellation: %v", err)
	}
}

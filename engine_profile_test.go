package rumble

import (
	"context"
	"strings"
	"testing"

	"rumble/internal/profile"
)

// profileEngine builds an engine with the vector conformance collections
// registered, at the given worker count and vectorization setting.
func profileEngine(t *testing.T, workers int, vectorize bool) *Engine {
	t.Helper()
	eng := New(Config{Parallelism: 4, Executors: workers, Vectorize: vectorize})
	vectorConformanceData(t, eng)
	return eng
}

// opRows is a profile operator stripped to its deterministic parts: the
// structural identity (name, input edge) and the row/batch counts. Wall
// times and busy/wait splits are timing-dependent and excluded.
type opRows struct {
	Name    string
	Input   int
	RowsIn  int64
	RowsOut int64
	Batches int64
}

func deterministicOps(snap ProfileSnapshot) []opRows {
	out := make([]opRows, len(snap.Ops))
	for i, op := range snap.Ops {
		out[i] = opRows{Name: op.Name, Input: op.Input, RowsIn: op.RowsIn,
			RowsOut: op.RowsOut, Batches: op.Batches}
	}
	return out
}

// TestVectorProfileDeterminism pins that per-operator profile counts are a
// property of the plan and the data, not of the schedule: the morsel
// boundaries are fixed by the scan, so rows in/out and batch counts per
// operator must be bit-identical across worker-pool sizes — only the
// timings may differ. Runs the main vector shapes (filter, group,
// order-by, hash join) at Executors 1, 2 and 8.
func TestVectorProfileDeterminism(t *testing.T) {
	queries := []struct{ name, query string }{
		{"filter-project", `for $o in collection("wide")
			where $o.v mod 2 eq 0
			return { "g": $o.g, "v": $o.v }`},
		{"group-agg", `for $o in collection("wide")
			group by $g := $o.g
			return { "g": $g, "n": count($o), "s": sum($o.v) }`},
		{"sort", `for $o in collection("wide")
			where $o.g lt 5
			order by $o.v descending
			return $o.v`},
		{"join", `for $o in collection("wide")
			for $d in collection("dims")
			where $o.g eq $d.g
			return { "v": $o.v, "name": $d.name }`},
	}
	for _, tc := range queries {
		t.Run(tc.name, func(t *testing.T) {
			var want []opRows
			var wantItems int
			for _, workers := range []int{1, 2, 8} {
				eng := profileEngine(t, workers, true)
				st, err := eng.Compile(tc.query)
				if err != nil {
					t.Fatal(err)
				}
				if st.Mode() != "Vector" {
					t.Fatalf("mode = %s, want Vector", st.Mode())
				}
				prof := st.NewProfile()
				items, err := st.CollectProfiled(context.Background(), 0, prof)
				if err != nil {
					t.Fatal(err)
				}
				snap := prof.Snapshot()
				if snap.Workers != int64(workers) {
					t.Errorf("workers-%d: snapshot workers = %d", workers, snap.Workers)
				}
				got := deterministicOps(snap)
				if workers == 1 {
					want, wantItems = got, len(items)
					// The scan operator must have recorded real work.
					rows := int64(0)
					for _, op := range got {
						rows += op.RowsOut
					}
					if rows == 0 {
						t.Fatalf("profile recorded no rows: %+v", got)
					}
					continue
				}
				if len(items) != wantItems {
					t.Errorf("workers-%d: %d items, want %d", workers, len(items), wantItems)
				}
				if len(got) != len(want) {
					t.Fatalf("workers-%d: %d operators, want %d", workers, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("workers-%d: operator %d = %+v, want %+v", workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestProfilingDoesNotChangeResults pins the observer effect away: the
// same statement evaluated with a live profile and with profiling off
// (nil) must produce identical results — and identical errors — in all
// four execution modes.
func TestProfilingDoesNotChangeResults(t *testing.T) {
	cases := []struct {
		name      string
		query     string
		vectorize bool
		wantMode  string
		wantErr   bool
	}{
		{name: "local-pushdown", query: `count(parallelize(1 to 100))`, wantMode: "Local"},
		{name: "local-flwor", query: `sum(for $x in 1 to 50 where $x mod 3 eq 0 return $x)`, wantMode: "Local"},
		{name: "rdd", query: `distinct-values(parallelize((1, 2, 2, 3, 3, 3)))`, wantMode: "RDD"},
		{name: "dataframe", query: `for $x in parallelize(1 to 100) where $x mod 2 eq 0 return $x * $x`, wantMode: "DataFrame"},
		{name: "dataframe-group", query: `for $o in collection("wide")
			group by $g := $o.g
			return { "g": $g, "n": count($o) }`, wantMode: "DataFrame"},
		{name: "vector-group", query: `for $o in collection("wide")
			group by $g := $o.g
			return { "g": $g, "n": count($o), "s": sum($o.v) }`, vectorize: true, wantMode: "Vector"},
		{name: "vector-sort", query: `for $o in collection("wide")
			where $o.g lt 3
			order by $o.v descending
			return $o.v`, vectorize: true, wantMode: "Vector"},
		{name: "vector-error", query: `for $o in collection("widebad")
			group by $g := $o.g
			return { "g": $g, "s": sum($o.v) }`, vectorize: true, wantMode: "Vector", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := profileEngine(t, 4, tc.vectorize)
			st, err := eng.Compile(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			if st.Mode() != tc.wantMode {
				t.Fatalf("mode = %s, want %s", st.Mode(), tc.wantMode)
			}
			plain, plainErr := st.CollectProfiled(context.Background(), 0, nil)
			profiled, profErr := st.CollectProfiled(context.Background(), 0, st.NewProfile())
			if tc.wantErr {
				if plainErr == nil || profErr == nil {
					t.Fatalf("errors: plain=%v profiled=%v, want both non-nil", plainErr, profErr)
				}
				if plainErr.Error() != profErr.Error() {
					t.Errorf("profiling changed the error: %q vs %q", plainErr, profErr)
				}
				return
			}
			if plainErr != nil || profErr != nil {
				t.Fatalf("errors: plain=%v profiled=%v", plainErr, profErr)
			}
			if len(plain) != len(profiled) {
				t.Fatalf("profiling changed the result size: %d vs %d", len(plain), len(profiled))
			}
			// Group output order across the shuffle is deterministic for a
			// fixed worker count, so item-by-item comparison is fair here.
			for i := range plain {
				a, b := string(plain[i].AppendJSON(nil)), string(profiled[i].AppendJSON(nil))
				if a != b {
					t.Errorf("item %d: plain %s, profiled %s", i, a, b)
				}
			}
		})
	}
}

// TestExplainAnalyzeAllModes is the acceptance gate for the analyze
// surface: in each of the four execution modes the rendered plan carries
// the mode bracket, at least one live per-operator annotation with rows
// and wall time, and the result footer.
func TestExplainAnalyzeAllModes(t *testing.T) {
	cases := []struct {
		name      string
		query     string
		vectorize bool
		mode      string
	}{
		{name: "Local", query: `sum(for $x in 1 to 50 where $x mod 3 eq 0 return $x)`, mode: "Local"},
		{name: "RDD", query: `distinct-values(parallelize((1, 2, 2, 3)))`, mode: "RDD"},
		{name: "DataFrame", query: `for $x in parallelize(1 to 100) where $x mod 2 eq 0 return $x * $x`, mode: "DataFrame"},
		{name: "Vector", query: `for $o in collection("wide")
			group by $g := $o.g
			return { "g": $g, "n": count($o) }`, vectorize: true, mode: "Vector"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := profileEngine(t, 4, tc.vectorize)
			st, err := eng.Compile(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			if st.Mode() != tc.mode {
				t.Fatalf("mode = %s, want %s", st.Mode(), tc.mode)
			}
			plan, err := st.ExplainAnalyze(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(plan, "["+tc.mode+"]") {
				t.Errorf("plan lost the mode bracket:\n%s", plan)
			}
			if !strings.Contains(plan, "out=") || !strings.Contains(plan, "ms)") {
				t.Errorf("plan has no live operator annotation:\n%s", plan)
			}
			if !strings.Contains(plan, "-- result: ") {
				t.Errorf("plan has no result footer:\n%s", plan)
			}
		})
	}
}

// TestExplainAnalyzeVectorDetails pins the vector rendering specifics: the
// scan line carries morsel batch counts, downstream lines derive rows-in
// from their input operator, and the parallel run reports its worker
// busy/wait footer.
func TestExplainAnalyzeVectorDetails(t *testing.T) {
	eng := profileEngine(t, 4, true)
	plan, err := eng.ExplainAnalyze(`for $o in collection("wide")
		where $o.v mod 2 eq 0
		return { "g": $o.g }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"batches=", "in=", "-- workers: 4 (busy "} {
		if !strings.Contains(plan, want) {
			t.Errorf("analyze output missing %q:\n%s", want, plan)
		}
	}
}

// TestProfileSnapshotShape pins the JSON-facing snapshot invariants the
// server and docs rely on: rows_in derivation from the input edge and the
// ring's newest-first bounded eviction.
func TestProfileSnapshotShape(t *testing.T) {
	eng := profileEngine(t, 2, true)
	st, err := eng.Compile(`for $o in collection("wide") return $o.v`)
	if err != nil {
		t.Fatal(err)
	}
	prof := st.NewProfile()
	if _, err := st.CollectProfiled(context.Background(), 0, prof); err != nil {
		t.Fatal(err)
	}
	snap := prof.Snapshot()
	for i, op := range snap.Ops {
		if op.Input < 0 {
			if op.RowsIn != -1 {
				t.Errorf("op %d (%s): source rows_in = %d, want -1", i, op.Name, op.RowsIn)
			}
			continue
		}
		if want := snap.Ops[op.Input].RowsOut; op.RowsIn != want {
			t.Errorf("op %d (%s): rows_in = %d, want input's rows_out %d", i, op.Name, op.RowsIn, want)
		}
	}
	ring := profile.NewRing(2)
	for _, id := range []string{"a", "b", "c"} {
		ring.Add(profile.Snapshot{QueryID: id})
	}
	got := ring.Snapshots()
	if len(got) != 2 || got[0].QueryID != "c" || got[1].QueryID != "b" {
		t.Errorf("ring = %+v, want newest-first [c b]", got)
	}
}

// Command datagen generates the synthetic evaluation datasets as JSON-Lines
// part-file directories.
//
//	datagen -kind confusion -n 1000000 -out /data/confusion
//	datagen -kind reddit -n 500000 -out /data/reddit -parts 16
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rumble/internal/datagen"
)

func main() {
	var (
		kind  = flag.String("kind", "confusion", "dataset kind: confusion or reddit")
		n     = flag.Int("n", 100_000, "number of objects")
		out   = flag.String("out", "", "output directory (required)")
		parts = flag.Int("parts", 8, "number of part files")
		seed  = flag.Int64("seed", 2024, "generator seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	var gen datagen.Generator
	switch *kind {
	case "confusion":
		gen = datagen.NewConfusionGenerator(*seed)
	case "reddit":
		gen = datagen.NewRedditGenerator(*seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	start := time.Now()
	if err := datagen.WriteDataset(*out, gen, *n, *parts); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d %s objects to %s (%d parts) in %v\n",
		*n, *kind, *out, *parts, time.Since(start).Round(time.Millisecond))
}

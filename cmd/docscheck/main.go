// Command docscheck keeps the documentation's embedded --explain snippets
// honest: it scans a markdown file for fenced ```jsoniq blocks that are
// followed by a fenced ```explain block, regenerates each plan through the
// real compiler, and fails (exit 1) when the committed snippet has drifted
// from what the engine actually prints. CI runs it against
// docs/query-cookbook.md; -update rewrites the file in place instead.
//
// An ```explain block renders the default engine's plan; ```explain
// vectorize renders the plan under Config{Vectorize: true}, pinning the
// Mode=Vector backend choices the cookbook demonstrates. An ```explain
// analyze block (optionally with the vectorize suffix) goes further: it
// executes the query and checks the live per-operator annotations —
// row counts, batch counts, plan shape — with the wall-clock figures
// masked to ?ms, since only the timings are run-dependent. Analyze
// queries must therefore be self-contained (no external files).
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"rumble"
)

func main() {
	update := flag.Bool("update", false, "rewrite the explain blocks in place instead of checking them")
	flag.Parse()
	path := "docs/query-cookbook.md"
	if flag.NArg() > 0 {
		path = flag.Arg(0)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	out, drift, err := Process(string(data))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if *update {
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("docscheck: %s: %d explain block(s) regenerated\n", path, len(drift))
		return
	}
	if len(drift) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %s: %d stale explain block(s):\n", path, len(drift))
		for _, d := range drift {
			fmt.Fprintf(os.Stderr, "\n--- query ---\n%s\n--- documented plan ---\n%s--- regenerated plan ---\n%s", d.Query, d.Old, d.New)
		}
		fmt.Fprintln(os.Stderr, "\nrun `go run ./cmd/docscheck -update` to refresh")
		os.Exit(1)
	}
	fmt.Printf("docscheck: %s: all explain blocks fresh\n", path)
}

// Drift describes one stale explain block.
type Drift struct {
	Query    string
	Old, New string
}

// Process walks the markdown source, regenerating every explain block that
// documents the preceding jsoniq block. It returns the rewritten source
// and the list of blocks whose committed text differed.
func Process(src string) (string, []Drift, error) {
	plain := rumble.New(rumble.Config{})
	vectorized := rumble.New(rumble.Config{Vectorize: true})

	lines := strings.Split(src, "\n")
	var out []string
	var drift []Drift
	var query string // pending jsoniq block, waiting for its explain block
	for i := 0; i < len(lines); {
		line := lines[i]
		fence := strings.TrimSpace(line)
		switch {
		case fence == "```jsoniq":
			body, next, err := fencedBlock(lines, i)
			if err != nil {
				return "", nil, err
			}
			query = body
			out = append(out, lines[i:next]...)
			i = next
		case fence == "```explain" || fence == "```explain vectorize",
			fence == "```explain analyze" || fence == "```explain analyze vectorize":
			if query == "" {
				return "", nil, fmt.Errorf("line %d: explain block without a preceding jsoniq block", i+1)
			}
			body, next, err := fencedBlock(lines, i)
			if err != nil {
				return "", nil, err
			}
			eng := plain
			if strings.HasSuffix(fence, " vectorize") {
				eng = vectorized
			}
			var plan string
			if strings.HasPrefix(fence, "```explain analyze") {
				plan, err = eng.ExplainAnalyze(query)
				plan = maskTimings(plan)
			} else {
				plan, err = eng.Explain(query)
			}
			if err != nil {
				return "", nil, fmt.Errorf("line %d: explain failed: %v\nquery:\n%s", i+1, err, query)
			}
			if body != strings.TrimRight(plan, "\n") {
				drift = append(drift, Drift{Query: query, Old: body + "\n", New: plan})
			}
			out = append(out, line)
			out = append(out, strings.Split(strings.TrimRight(plan, "\n"), "\n")...)
			out = append(out, "```")
			i = next
			query = ""
		default:
			// Prose between a jsoniq block and its explain block is fine;
			// a new heading or block resets nothing — the pairing is
			// simply "next explain block after a jsoniq block".
			out = append(out, line)
			i++
		}
	}
	return strings.Join(out, "\n"), drift, nil
}

// timingRE matches the wall-clock figures explain-analyze renders (the
// per-operator annotations and the result/workers footers).
var timingRE = regexp.MustCompile(`\d+\.\d{2}ms`)

// maskTimings replaces every wall-clock figure in an analyze rendering
// with ?ms, leaving the deterministic parts — plan shape, row counts,
// batch counts, worker counts — for the freshness check.
func maskTimings(s string) string { return timingRE.ReplaceAllString(s, "?ms") }

// fencedBlock returns the body of the fenced block opening at line i and
// the index just past its closing fence.
func fencedBlock(lines []string, i int) (string, int, error) {
	var body []string
	for j := i + 1; j < len(lines); j++ {
		if strings.TrimSpace(lines[j]) == "```" {
			return strings.Join(body, "\n"), j + 1, nil
		}
		body = append(body, lines[j])
	}
	return "", 0, fmt.Errorf("line %d: unterminated fenced block", i+1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "docscheck:", err)
	os.Exit(1)
}

package main

import (
	"os"
	"strings"
	"testing"
)

// TestCookbookFresh runs the freshness check against the committed
// cookbook, so a compiler change that alters plans fails `go test` until
// the docs are regenerated (go run ./cmd/docscheck -update).
func TestCookbookFresh(t *testing.T) {
	data, err := os.ReadFile("../../docs/query-cookbook.md")
	if err != nil {
		t.Fatal(err)
	}
	_, drift, err := Process(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(drift) > 0 {
		for _, d := range drift {
			t.Errorf("stale explain block for query:\n%s\n--- documented ---\n%s--- regenerated ---\n%s",
				d.Query, d.Old, d.New)
		}
		t.Error("run `go run ./cmd/docscheck -update` to refresh docs/query-cookbook.md")
	}
}

// TestProcessDetectsDrift pins the checker itself: a stale plan is
// reported and rewritten, a fresh one passes untouched.
func TestProcessDetectsDrift(t *testing.T) {
	doc := "# t\n\n```jsoniq\n1 + 2\n```\n```explain\nstale\n```\n"
	out, drift, err := Process(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(drift) != 1 {
		t.Fatalf("drift = %d, want 1", len(drift))
	}
	// The rewritten document must be fresh.
	out2, drift2, err := Process(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(drift2) != 0 || out2 != out {
		t.Fatalf("rewritten doc still drifts: %v", drift2)
	}
}

// TestProcessVectorizeFence pins that the vectorize fence actually flips
// the engine: the same pipeline explains to Vector under it and to
// DataFrame without it.
func TestProcessVectorizeFence(t *testing.T) {
	q := "for $o in json-file(\"d.jsonl\")\nwhere $o.v gt 1\nreturn $o.v"
	doc := "```jsoniq\n" + q + "\n```\n```explain vectorize\n```\n" +
		"```jsoniq\n" + q + "\n```\n```explain\n```\n"
	out, _, err := Process(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "flwor [Vector x4]") {
		t.Errorf("vectorize fence produced no Vector plan:\n%s", out)
	}
	if !strings.Contains(out, "flwor [DataFrame]") {
		t.Errorf("plain fence produced no DataFrame plan:\n%s", out)
	}
}

// TestProcessAnalyzeFence pins the explain-analyze fence: the query is
// actually executed (live row counts appear), every wall-clock figure is
// masked to ?ms so reruns are stable, and drift detection still bites on
// a stale row count.
func TestProcessAnalyzeFence(t *testing.T) {
	doc := "```jsoniq\ncount(parallelize(1 to 100))\n```\n```explain analyze\nstale\n```\n"
	out, drift, err := Process(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(drift) != 1 {
		t.Fatalf("drift = %d, want 1", len(drift))
	}
	if !strings.Contains(out, "out=100") || !strings.Contains(out, "-- result: 1 rows") {
		t.Errorf("analyze fence carries no live statistics:\n%s", out)
	}
	if !strings.Contains(out, "?ms") {
		t.Errorf("analyze fence lost its timing placeholders:\n%s", out)
	}
	if timingRE.MatchString(out) {
		t.Errorf("unmasked timing survived in:\n%s", out)
	}
	// A rerun of the regenerated document is deterministic: same counts,
	// same masks, no drift.
	out2, drift2, err := Process(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(drift2) != 0 || out2 != out {
		t.Fatalf("regenerated analyze block still drifts: %v", drift2)
	}
}

// Command benchfig regenerates the paper's evaluation figures (11-15) on
// synthetic datasets and prints the measured series as a table and,
// optionally, CSV.
//
//	benchfig -fig 11 -n 200000
//	benchfig -fig all -csv results.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rumble/internal/bench"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to reproduce: 11, 12, 13, 14, 15 or all")
		n       = flag.Int("n", 100_000, "dataset size in objects (base size for sweeps)")
		baseDir = flag.String("data", "", "directory for generated datasets (default: temp)")
		csvPath = flag.String("csv", "", "also write results to this CSV file")
		budget  = flag.Int("budget", 60_000, "single-node engines' materialization budget (items)")
		iolat   = flag.Duration("iolatency", 0, "simulated storage latency per 64KiB block (figures 14/15)")
	)
	flag.Parse()

	opts := bench.Options{
		BaseDir:   *baseDir,
		Objects:   *n,
		Budget:    *budget,
		IOLatency: *iolat,
	}
	var rows []bench.Row
	for _, f := range strings.Split(*fig, ",") {
		var (
			part []bench.Row
			err  error
		)
		start := time.Now()
		switch f {
		case "11":
			part, err = bench.RunFigure11(opts)
		case "12":
			part, err = bench.RunFigure12(opts)
		case "13":
			part, err = bench.RunFigure13(opts)
		case "14":
			part, err = bench.RunFigure14(opts)
		case "15":
			part, err = bench.RunFigure15(opts)
		case "all":
			for _, ff := range []func(bench.Options) ([]bench.Row, error){
				bench.RunFigure11, bench.RunFigure12, bench.RunFigure13,
				bench.RunFigure14, bench.RunFigure15,
			} {
				p, e := ff(opts)
				if e != nil {
					fatal(e)
				}
				part = append(part, p...)
			}
		default:
			fatal(fmt.Errorf("unknown figure %q", f))
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "figure %s done in %v\n", f, time.Since(start).Round(time.Millisecond))
		rows = append(rows, part...)
	}
	bench.PrintTable(os.Stdout, rows)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := bench.WriteCSV(f, rows); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfig:", err)
	os.Exit(1)
}

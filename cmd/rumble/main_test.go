package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rumble"
)

func testEngine() *rumble.Engine {
	return rumble.New(rumble.Config{Parallelism: 2, Executors: 2})
}

func TestRunQueryToStdout(t *testing.T) {
	var out, errw bytes.Buffer
	err := runQueryTo(&out, &errw, testEngine(), `1 to 3`, "", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "1\n2\n3\n" {
		t.Errorf("stdout = %q", out.String())
	}
	if !strings.Contains(errw.String(), "3 items in") {
		t.Errorf("timing line = %q", errw.String())
	}
}

func TestRunQueryToOutputDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	var out, errw bytes.Buffer
	err := runQueryTo(&out, &errw, testEngine(),
		`for $x in parallelize(1 to 20) return { "x": $x }`, dir, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("output-dir mode should not print results")
	}
	if _, err := os.Stat(filepath.Join(dir, "_SUCCESS")); err != nil {
		t.Error("_SUCCESS marker missing")
	}
}

func TestRunQueryReportsErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := runQueryTo(&out, &errw, testEngine(), `$unbound`, "", false, 0); err == nil {
		t.Error("static error should propagate")
	}
	if err := runQueryTo(&out, &errw, testEngine(), `1 div 0`, "", false, 0); err == nil {
		t.Error("dynamic error should propagate")
	}
}

func TestExplainQuery(t *testing.T) {
	var out bytes.Buffer
	err := explainQuery(&out, testEngine(),
		`for $o in json-file("data.jsonl") where $o.guess eq $o.target return $o`)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "flwor [DataFrame]") {
		t.Errorf("plan missing DataFrame annotation: %q", s)
	}
	if !strings.Contains(s, "call json-file/1 [RDD]") {
		t.Errorf("plan missing RDD source annotation: %q", s)
	}
	if err := explainQuery(&out, testEngine(), `for $x in`); err == nil {
		t.Error("explain of a malformed query should error")
	}
}

func TestExplainQueryShowsJoinStrategy(t *testing.T) {
	var out bytes.Buffer
	err := explainQuery(&out, testEngine(), `
		for $a in json-file("a.jsonl")
		for $b in json-file("b.jsonl")
		where $a.k eq $b.k
		return { "a": $a, "b": $b }`)
	if err != nil {
		t.Fatal(err)
	}
	if s := out.String(); !strings.Contains(s, "Join[hash]") {
		t.Errorf("--explain missing the join node: %q", s)
	}
	out.Reset()
	err = explainQuery(&out, testEngine(), `
		for $a in json-file("a.jsonl")
		for $b in parallelize(({"k": 1}))
		where $a.k eq $b.k
		return $a`)
	if err != nil {
		t.Fatal(err)
	}
	if s := out.String(); !strings.Contains(s, "Join[broadcast]") {
		t.Errorf("--explain missing the broadcast join node: %q", s)
	}
}

func TestShellSession(t *testing.T) {
	in := strings.NewReader("1 + 1\n\nfor $x in (1,2)\nreturn $x\n\nbad syntax here(\n\nquit\n")
	var out, errw bytes.Buffer
	shellOn(in, &out, &errw, testEngine(), false, 0)
	s := out.String()
	if !strings.Contains(s, "2\n") {
		t.Errorf("shell did not evaluate 1+1: %q", s)
	}
	if !strings.Contains(s, "1\n2\n") {
		t.Errorf("shell did not evaluate multi-line FLWOR: %q", s)
	}
	if !strings.Contains(errw.String(), "error:") {
		t.Errorf("shell did not report the syntax error: %q", errw.String())
	}
}

func TestShellEOFExits(t *testing.T) {
	in := strings.NewReader("") // immediate EOF
	var out, errw bytes.Buffer
	shellOn(in, &out, &errw, testEngine(), false, 0) // must return, not loop
	if !strings.Contains(out.String(), "jsoniq$") {
		t.Errorf("prompt missing: %q", out.String())
	}
}

func TestShellExplainCommand(t *testing.T) {
	in := strings.NewReader("explain count(json-file(\"data.jsonl\"))\n\nquit\n")
	var out, errw bytes.Buffer
	shellOn(in, &out, &errw, testEngine(), false, 0)
	s := out.String()
	if !strings.Contains(s, "(cluster pushdown)") || !strings.Contains(s, "call json-file/1 [RDD]") {
		t.Errorf("explain command did not print the annotated plan: %q", s)
	}
	if errw.Len() != 0 {
		t.Errorf("explain command reported an error: %q", errw.String())
	}
}

func TestShellExplainCommandMultiline(t *testing.T) {
	in := strings.NewReader("explain\nfor $x in parallelize(1 to 3)\nreturn $x\n\nquit\n")
	var out, errw bytes.Buffer
	shellOn(in, &out, &errw, testEngine(), false, 0)
	if s := out.String(); !strings.Contains(s, "flwor [DataFrame]") {
		t.Errorf("multi-line explain did not print the plan: %q", s)
	}
}

func TestShellCapAnnounced(t *testing.T) {
	// The shell caps materialization; the truncation must be announced,
	// never silent.
	var out, errw bytes.Buffer
	if err := runQueryTo(&out, &errw, testEngine(), `1 to 10`, "", false, 4); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "1\n2\n3\n4\n") {
		t.Errorf("capped output wrong prefix: %q", s)
	}
	if strings.Contains(s, "\n5\n") {
		t.Errorf("cap did not stop the stream: %q", s)
	}
	if !strings.Contains(s, "... (capped at 4 items") {
		t.Errorf("cap not announced: %q", s)
	}
	// Under the cap, no announcement.
	out.Reset()
	if err := runQueryTo(&out, &errw, testEngine(), `1 to 3`, "", false, 4); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "capped") {
		t.Errorf("uncapped result announced a cap: %q", out.String())
	}
}

func TestExplainCommandParsing(t *testing.T) {
	for _, tc := range []struct {
		in string
		q  string
		ok bool
	}{
		{"explain 1 + 1", "1 + 1", true},
		{"explain\n1 + 1", "1 + 1", true},
		{"explained($x)", "", false},
		{"explain", "", false},
		{"  explain \t count(1)", "count(1)", true},
	} {
		q, ok := explainCommand(tc.in)
		if ok != tc.ok || q != tc.q {
			t.Errorf("explainCommand(%q) = (%q, %v), want (%q, %v)", tc.in, q, ok, tc.q, tc.ok)
		}
	}
}

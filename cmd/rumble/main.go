// Command rumble executes JSONiq queries from the command line or an
// interactive shell, the way the Rumble jar does:
//
//	rumble -q 'for $x in parallelize(1 to 5) return $x * $x'
//	rumble -f query.jq --output out-dir
//	rumble                # starts the shell
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rumble"
)

func main() {
	var (
		query       = flag.String("q", "", "JSONiq query text")
		file        = flag.String("f", "", "file containing the JSONiq query")
		output      = flag.String("output", "", "write results to this directory as JSON-Lines part files")
		parallelism = flag.Int("parallelism", 8, "default number of partitions")
		executors   = flag.Int("executors", 4, "concurrent executor slots")
		maxResults  = flag.Int("max-results", 1000, "shell materialization cap (0 = unlimited)")
		showTime    = flag.Bool("time", false, "print execution time")
		explain     = flag.Bool("explain", false, "print the mode-annotated physical plan instead of executing")
	)
	flag.Parse()

	eng := rumble.New(rumble.Config{
		Parallelism:    *parallelism,
		Executors:      *executors,
		MaxResultItems: *maxResults,
	})

	text := *query
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if *explain {
		if text == "" {
			fatal(fmt.Errorf("--explain requires a query (-q or -f)"))
		}
		if err := explainQuery(os.Stdout, eng, text); err != nil {
			fatal(err)
		}
		return
	}
	if text == "" {
		shell(eng, *showTime)
		return
	}
	if err := runQuery(eng, text, *output, *showTime); err != nil {
		fatal(err)
	}
}

// explainQuery prints the statically annotated physical plan of one query.
func explainQuery(out io.Writer, eng *rumble.Engine, text string) error {
	plan, err := eng.Explain(text)
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, plan)
	return err
}

func runQuery(eng *rumble.Engine, text, output string, showTime bool) error {
	return runQueryTo(os.Stdout, os.Stderr, eng, text, output, showTime)
}

// runQueryTo compiles and runs one query, streaming results to out; status
// messages (timings) go to errw.
func runQueryTo(out, errw io.Writer, eng *rumble.Engine, text, output string, showTime bool) error {
	start := time.Now()
	st, err := eng.Compile(text)
	if err != nil {
		return err
	}
	if output != "" {
		if err := st.WriteTo(output); err != nil {
			return err
		}
		if showTime {
			fmt.Fprintf(errw, "written to %s in %v\n", output, time.Since(start))
		}
		return nil
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	n := 0
	if err := st.Stream(func(it rumble.Item) error {
		n++
		w.Write(it.AppendJSON(nil))
		return w.WriteByte('\n')
	}); err != nil {
		return err
	}
	if showTime {
		w.Flush()
		fmt.Fprintf(errw, "%d items in %v\n", n, time.Since(start))
	}
	return nil
}

// shell runs the interactive REPL. Like the Rumble shell, the cluster
// context is set up once at launch and queries run against it; a trailing
// blank line (or a complete single line) submits the query.
func shell(eng *rumble.Engine, showTime bool) {
	shellOn(os.Stdin, os.Stdout, os.Stderr, eng, showTime)
}

// shellOn runs the REPL over explicit streams.
func shellOn(in io.Reader, out, errw io.Writer, eng *rumble.Engine, showTime bool) {
	fmt.Fprintln(out, "Rumble-Go shell — JSONiq on a Spark-like engine")
	fmt.Fprintln(out, `Type a query and finish with an empty line. "quit" exits.`)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf []string
	for {
		if len(buf) == 0 {
			fmt.Fprint(out, "jsoniq$ ")
		} else {
			fmt.Fprint(out, "      > ")
		}
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if len(buf) == 0 && (trimmed == "quit" || trimmed == "exit") {
			return
		}
		if trimmed != "" {
			buf = append(buf, line)
			continue
		}
		if len(buf) == 0 {
			continue
		}
		text := strings.Join(buf, "\n")
		buf = nil
		if err := runQueryTo(out, errw, eng, text, "", showTime); err != nil {
			fmt.Fprintln(errw, "error:", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rumble:", err)
	os.Exit(1)
}

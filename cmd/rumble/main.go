// Command rumble executes JSONiq queries from the command line, an
// interactive shell, or a long-lived HTTP server, the way the Rumble jar
// does:
//
//	rumble -q 'for $x in parallelize(1 to 5) return $x * $x'
//	rumble -f query.jq --output out-dir
//	rumble                # starts the shell
//	rumble serve --listen :8090 --collection data=/data/part-files
//	rumble ingest /data/part-files
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"rumble"
	"rumble/internal/segment"
	"rumble/internal/server"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "ingest" {
		ingestMain(os.Args[2:])
		return
	}
	var (
		query          = flag.String("q", "", "JSONiq query text")
		file           = flag.String("f", "", "file containing the JSONiq query")
		output         = flag.String("output", "", "write results to this directory as JSON-Lines part files")
		parallelism    = flag.Int("parallelism", 8, "default number of partitions")
		executors      = flag.Int("executors", 4, "concurrent executor slots")
		maxResults     = flag.Int("max-results", 1000, "shell materialization cap (0 = unlimited)")
		showTime       = flag.Bool("time", false, "print execution time")
		explain        = flag.Bool("explain", false, "print the mode-annotated physical plan instead of executing")
		explainAnalyze = flag.Bool("explain-analyze", false, "execute the query and print the plan annotated with live per-operator statistics")
		vectorize      = flag.Bool("vectorize", false, "compile eligible pipelines to the columnar local backend (Mode=Vector)")
		segments       = flag.Bool("segments", false, "serve storage-backed scans from the columnar segment store (ingesting `.segments` siblings on first touch)")
		segCacheBytes  = flag.Int64("segment-cache-bytes", 0, "segment buffer pool budget in bytes (0 = 64 MiB)")
	)
	flag.Parse()

	eng := rumble.New(rumble.Config{
		Parallelism:       *parallelism,
		Executors:         *executors,
		MaxResultItems:    *maxResults,
		Vectorize:         *vectorize,
		Segments:          *segments,
		SegmentCacheBytes: *segCacheBytes,
	})

	text := *query
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if *explain {
		if text == "" {
			fatal(fmt.Errorf("--explain requires a query (-q or -f)"))
		}
		if err := explainQuery(os.Stdout, eng, text); err != nil {
			fatal(err)
		}
		return
	}
	if *explainAnalyze {
		if text == "" {
			fatal(fmt.Errorf("--explain-analyze requires a query (-q or -f)"))
		}
		if err := explainAnalyzeQuery(os.Stdout, eng, text); err != nil {
			fatal(err)
		}
		return
	}
	if text == "" {
		shell(eng, *showTime, *maxResults)
		return
	}
	if err := runQuery(eng, text, *output, *showTime, *maxResults); err != nil {
		fatal(err)
	}
}

// collectionFlags collects repeated --collection name=path registrations.
type collectionFlags []string

func (c *collectionFlags) String() string { return strings.Join(*c, ",") }

func (c *collectionFlags) Set(v string) error {
	if _, _, ok := strings.Cut(v, "="); !ok {
		return fmt.Errorf("expected name=path, got %q", v)
	}
	*c = append(*c, v)
	return nil
}

// ingestMain converts JSON-Lines sources into their columnar `.segments`
// siblings ahead of serving, so the first --segments query pays no
// one-time ingest. Re-running after the source changed refreshes the
// segments; an unchanged source is re-ingested as written (ingest is
// idempotent in content, cheap relative to serving cold).
func ingestMain(args []string) {
	fs := flag.NewFlagSet("rumble ingest", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("usage: rumble ingest <json-lines path>..."))
	}
	for _, path := range fs.Args() {
		if err := segment.Ingest(path); err != nil {
			fatal(err)
		}
		ds, err := segment.OpenDataset(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d rows in %d segments -> %s\n", path, ds.Manifest.Rows, ds.NumSegments(), ds.Dir)
	}
}

// serveMain runs the long-lived HTTP query server: POST /query with a plan
// cache and admission control, GET /explain, /metrics and /healthz.
func serveMain(args []string) {
	fs := flag.NewFlagSet("rumble serve", flag.ExitOnError)
	var (
		listen        = fs.String("listen", ":8090", "address to serve HTTP on")
		parallelism   = fs.Int("parallelism", 8, "default number of partitions")
		executors     = fs.Int("executors", 4, "concurrent executor slots")
		maxConcurrent = fs.Int("max-concurrent", 0, "concurrent query evaluations (0 = executor count)")
		queueDepth    = fs.Int("queue-depth", 0, "requests allowed to queue beyond max-concurrent before 429 (0 = 2x max-concurrent)")
		cacheBytes    = fs.Int64("plan-cache-bytes", 8<<20, "compiled-plan LRU cache budget in approximate resident bytes")
		timeout       = fs.Duration("timeout", 30*time.Second, "default per-request evaluation deadline (0 = none)")
		maxResult     = fs.Int("max-result-items", 1_000_000, "reject unlimited results larger than this (0 = unbounded)")
		vectorize     = fs.Bool("vectorize", false, "compile eligible pipelines to the columnar local backend (Mode=Vector)")
		segments      = fs.Bool("segments", false, "serve storage-backed scans from the columnar segment store (ingesting `.segments` siblings on first touch)")
		segCacheBytes = fs.Int64("segment-cache-bytes", 0, "segment buffer pool budget in bytes (0 = 64 MiB)")
		slowQueryMS   = fs.Int("slow-query-ms", 0, "log a JSON profile line to stderr for queries at or above this total time (0 = off)")
		enablePprof   = fs.Bool("enable-pprof", false, "mount net/http/pprof under /debug/pprof/")
		profileRing   = fs.Int("profile-ring", 0, "recent query profiles kept for GET /debug/queries (0 = 128)")
	)
	var colls collectionFlags
	fs.Var(&colls, "collection", "register a name=path JSON-Lines collection (repeatable)")
	fs.Parse(args)

	eng := rumble.New(rumble.Config{
		Parallelism: *parallelism, Executors: *executors, Vectorize: *vectorize,
		Segments: *segments, SegmentCacheBytes: *segCacheBytes,
	})
	for _, c := range colls {
		name, path, _ := strings.Cut(c, "=")
		eng.RegisterCollection(name, path)
	}
	opt := server.Options{
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		PlanCacheBytes: *cacheBytes,
		DefaultTimeout: *timeout,
		MaxResultItems: *maxResult,
		SlowQueryMS:    *slowQueryMS,
		EnablePprof:    *enablePprof,
		ProfileRing:    *profileRing,
	}
	if *timeout == 0 {
		opt.DefaultTimeout = -1 // explicit 0 means "no default deadline"
	}
	if *maxResult == 0 {
		opt.MaxResultItems = -1 // explicit 0 means "unbounded"
	}
	srv := server.New(eng, opt)
	fmt.Fprintf(os.Stderr, "rumble: serving JSONiq on %s (POST /query, GET /explain, /metrics, /healthz)\n", *listen)
	fatal(http.ListenAndServe(*listen, srv.Handler()))
}

// explainQuery prints the statically annotated physical plan of one query.
func explainQuery(out io.Writer, eng *rumble.Engine, text string) error {
	plan, err := eng.Explain(text)
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, plan)
	return err
}

// explainAnalyzeQuery executes one query and prints the plan annotated
// with the run's per-operator statistics.
func explainAnalyzeQuery(out io.Writer, eng *rumble.Engine, text string) error {
	plan, err := eng.ExplainAnalyze(text)
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, plan)
	return err
}

func runQuery(eng *rumble.Engine, text, output string, showTime bool, maxResults int) error {
	return runQueryTo(os.Stdout, os.Stderr, eng, text, output, showTime, maxResults)
}

// errCapped aborts streaming once the shell materialization cap is hit.
var errCapped = errors.New("result capped")

// runQueryTo compiles and runs one query, streaming results to out; status
// messages (timings) go to errw. When maxResults > 0 the printed result is
// capped at that many items and the truncation is announced on out, so a
// cap never silently swallows results.
func runQueryTo(out, errw io.Writer, eng *rumble.Engine, text, output string, showTime bool, maxResults int) error {
	start := time.Now()
	st, err := eng.Compile(text)
	if err != nil {
		return err
	}
	if output != "" {
		if err := st.WriteTo(output); err != nil {
			return err
		}
		if showTime {
			fmt.Fprintf(errw, "written to %s in %v\n", output, time.Since(start))
		}
		return nil
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	n := 0
	err = st.Stream(func(it rumble.Item) error {
		if maxResults > 0 && n >= maxResults {
			return errCapped
		}
		n++
		w.Write(it.AppendJSON(nil))
		return w.WriteByte('\n')
	})
	switch {
	case errors.Is(err, errCapped):
		fmt.Fprintf(w, "... (capped at %d items; rerun with --max-results 0 for the full result)\n", maxResults)
	case err != nil:
		return err
	}
	if showTime {
		w.Flush()
		fmt.Fprintf(errw, "%d items in %v\n", n, time.Since(start))
	}
	return nil
}

// shell runs the interactive REPL. Like the Rumble shell, the cluster
// context is set up once at launch and queries run against it; a trailing
// blank line submits the query.
func shell(eng *rumble.Engine, showTime bool, maxResults int) {
	shellOn(os.Stdin, os.Stdout, os.Stderr, eng, showTime, maxResults)
}

// shellOn runs the REPL over explicit streams. A submission starting with
// the word "explain" prints the query's mode-annotated physical plan
// instead of executing it, mirroring rumble --explain.
func shellOn(in io.Reader, out, errw io.Writer, eng *rumble.Engine, showTime bool, maxResults int) {
	fmt.Fprintln(out, "Rumble-Go shell — JSONiq on a Spark-like engine")
	fmt.Fprintln(out, `Type a query and finish with an empty line. "explain <query>" prints its plan,`)
	fmt.Fprintln(out, `"explain analyze <query>" runs it and prints the plan with live statistics. "quit" exits.`)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf []string
	for {
		if len(buf) == 0 {
			fmt.Fprint(out, "jsoniq$ ")
		} else {
			fmt.Fprint(out, "      > ")
		}
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if len(buf) == 0 && (trimmed == "quit" || trimmed == "exit") {
			return
		}
		if trimmed != "" {
			buf = append(buf, line)
			continue
		}
		if len(buf) == 0 {
			continue
		}
		text := strings.Join(buf, "\n")
		buf = nil
		if q, ok := explainCommand(text); ok {
			render := explainQuery
			if qa, analyze := explainAnalyzeCommand(q); analyze {
				render, q = explainAnalyzeQuery, qa
			}
			if err := render(out, eng, q); err != nil {
				fmt.Fprintln(errw, "error:", err)
			}
			continue
		}
		if err := runQueryTo(out, errw, eng, text, "", showTime, maxResults); err != nil {
			fmt.Fprintln(errw, "error:", err)
		}
	}
}

// explainCommand recognizes an "explain <query>" shell submission and
// returns the query text.
func explainCommand(text string) (string, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), "explain")
	if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '\t' && rest[0] != '\n') {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// explainAnalyzeCommand recognizes the "analyze <query>" tail of an
// "explain analyze <query>" shell submission.
func explainAnalyzeCommand(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "analyze")
	if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '\t' && rest[0] != '\n') {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rumble:", err)
	os.Exit(1)
}

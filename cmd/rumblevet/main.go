// Command rumblevet runs the repository's invariant analyzers over the
// module and exits non-zero when any invariant is violated. It is the CI
// gate behind the engine's semantic guarantees that the Go compiler cannot
// check: deterministic emit order, cooperative cancellation, JSONiq value
// equality, metric registry completeness, and exhaustive mode dispatch.
//
// Usage:
//
//	go run ./cmd/rumblevet ./...
//	go run ./cmd/rumblevet ./internal/spark ./internal/runtime
//
// Findings print as file:line:col: [analyzer] message. Individual findings
// are suppressed in source with //rumble:<class>-ok <justification>; the
// justification is mandatory. See docs/development.md for the invariant
// catalogue.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rumble/internal/analysis"
	"rumble/internal/analysis/ctxpoll"
	"rumble/internal/analysis/detorder"
	"rumble/internal/analysis/itemcmp"
	"rumble/internal/analysis/metricsreg"
	"rumble/internal/analysis/modecase"
)

// scoped pairs an analyzer with the packages it gates. Determinism and
// cancellation are properties of the execution layers; the remaining passes
// are cheap and safe module-wide (metricsreg no-ops without a Metrics
// struct, itemcmp skips internal/item itself).
type scoped struct {
	analyzer *analysis.Analyzer
	match    func(path string) bool
}

func suffixIn(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if strings.HasSuffix(path, s) {
				return true
			}
		}
		return false
	}
}

func everywhere(string) bool { return true }

var suite = []scoped{
	{detorder.Analyzer, suffixIn("internal/runtime", "internal/vector", "internal/spark", "internal/segment")},
	{ctxpoll.Analyzer, suffixIn("internal/runtime", "internal/spark")},
	{itemcmp.Analyzer, everywhere},
	{metricsreg.Analyzer, everywhere},
	{modecase.Analyzer, everywhere},
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	dirs, err := expand(loader, patterns)
	if err != nil {
		fatal(err)
	}
	var all []analysis.Diagnostic
	for _, dir := range dirs {
		path := importPath(loader, dir)
		var wanted []*analysis.Analyzer
		for _, s := range suite {
			if s.match(path) {
				wanted = append(wanted, s.analyzer)
			}
		}
		if len(wanted) == 0 {
			continue
		}
		pkg, err := loader.Load(dir, path)
		if err != nil {
			fatal(err)
		}
		diags, err := analysis.Run(pkg, wanted...)
		if err != nil {
			fatal(err)
		}
		all = append(all, diags...)
	}
	for _, d := range all {
		fmt.Println(d)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "rumblevet: %d finding(s)\n", len(all))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rumblevet:", err)
	os.Exit(2)
}

// expand resolves the command-line patterns to package directories. "..."
// patterns walk the tree; plain arguments name single package directories.
// Directories named testdata, docs, or starting with "." or "_" are skipped,
// matching the go tool's package discovery rules.
func expand(l *analysis.Loader, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if pat == "..." {
			root, recursive = ".", true
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "docs" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// importPath maps a package directory to its module import path.
func importPath(l *analysis.Loader, dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return dir
	}
	if rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

package rumble

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// joinTestEngine returns an engine loaded with two small collections that
// exercise matches, multiplicity, misses, null keys and missing keys.
func joinTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	if err := e.RegisterJSON("orders", []string{
		`{"oid": 1, "cust": 10, "amount": 5}`,
		`{"oid": 2, "cust": 11, "amount": 7}`,
		`{"oid": 3, "cust": 10, "amount": 9}`,
		`{"oid": 4, "cust": 99, "amount": 1}`,
		`{"oid": 5, "cust": null, "amount": 2}`,
		`{"oid": 6, "amount": 3}`,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterJSON("customers", []string{
		`{"cid": 10, "name": "ada"}`,
		`{"cid": 11, "name": "bob"}`,
		`{"cid": 12, "name": "cyd"}`,
		`{"cid": null, "name": "nil"}`,
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

const joinQuery = `
	for $o in collection("orders")
	for $c in collection("customers")
	where $o.cust eq $c.cid
	return { "oid": $o.oid, "name": $c.name }`

// wantJoin is the nested-loop ground truth for joinQuery: null eq null is
// true in JSONiq, so order 5 matches customer "nil"; order 6 has no cust
// field (empty key) and order 4 no matching customer.
var wantJoin = []string{
	`{"oid" : 1, "name" : "ada"}`,
	`{"oid" : 2, "name" : "bob"}`,
	`{"oid" : 3, "name" : "ada"}`,
	`{"oid" : 5, "name" : "nil"}`,
}

func sortedRun(t *testing.T, e *Engine, q string) []string {
	t.Helper()
	out := run(t, e, q)
	sort.Strings(out)
	return out
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	joined := joinTestEngine(t, Config{Parallelism: 4, Executors: 4})
	nested := joinTestEngine(t, Config{Parallelism: 4, Executors: 4, DisableJoin: true})
	if plan := mustExplain(t, joined, joinQuery); !strings.Contains(plan, "Join[hash]") {
		t.Fatalf("hash join not chosen:\n%s", plan)
	}
	if plan := mustExplain(t, nested, joinQuery); strings.Contains(plan, "Join[") {
		t.Fatalf("DisableJoin engine still joins:\n%s", plan)
	}
	got := sortedRun(t, joined, joinQuery)
	want := sortedRun(t, nested, joinQuery)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("hash join diverges from nested loop:\ngot  %v\nwant %v", got, want)
	}
	if !reflect.DeepEqual(want, wantJoin) {
		t.Errorf("nested-loop baseline drifted:\ngot  %v\nwant %v", want, wantJoin)
	}
}

func TestBroadcastJoinMatchesNestedLoop(t *testing.T) {
	// The small side is a parallelize() literal, so the compiler picks the
	// broadcast strategy; results must match the nested loop exactly.
	q := `
		for $o in collection("orders")
		for $c in parallelize(({"cid": 10, "name": "ada"}, {"cid": 11, "name": "bob"}))
		where $o.cust eq $c.cid
		return { "oid": $o.oid, "name": $c.name }`
	joined := joinTestEngine(t, Config{Parallelism: 4, Executors: 4})
	nested := joinTestEngine(t, Config{Parallelism: 4, Executors: 4, DisableJoin: true})
	if plan := mustExplain(t, joined, q); !strings.Contains(plan, "Join[broadcast]") {
		t.Fatalf("broadcast join not chosen:\n%s", plan)
	}
	got := sortedRun(t, joined, q)
	want := sortedRun(t, nested, q)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("broadcast join diverges:\ngot  %v\nwant %v", got, want)
	}
	if m := joined.Metrics(); m.BroadcastRecords == 0 {
		t.Error("broadcast join reported no broadcast records")
	}
	// Broadcast with the small side on the left preserves semantics too.
	qLeft := `
		for $c in parallelize(({"cid": 10, "name": "ada"}, {"cid": 11, "name": "bob"}))
		for $o in collection("orders")
		where $o.cust eq $c.cid
		return { "oid": $o.oid, "name": $c.name }`
	if plan := mustExplain(t, joined, qLeft); !strings.Contains(plan, "Join[broadcast] for $c, for $o (build: left)") {
		t.Fatalf("left-build broadcast join not chosen:\n%s", plan)
	}
	got = sortedRun(t, joined, qLeft)
	want = sortedRun(t, nested, qLeft)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("left-build broadcast join diverges:\ngot  %v\nwant %v", got, want)
	}
}

func TestJoinResidualPredicateAndMultipleKeys(t *testing.T) {
	q := `
		for $o in collection("orders")
		for $c in collection("customers")
		where $c.cid eq $o.cust and $o.amount gt 5
		return { "oid": $o.oid, "name": $c.name }`
	joined := joinTestEngine(t, Config{Parallelism: 4, Executors: 4})
	nested := joinTestEngine(t, Config{Parallelism: 4, Executors: 4, DisableJoin: true})
	got := sortedRun(t, joined, q)
	want := sortedRun(t, nested, q)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("residual join diverges:\ngot  %v\nwant %v", got, want)
	}
	if len(got) != 2 { // orders 2 (amount 7) and 3 (amount 9)
		t.Errorf("residual filter kept %d rows, want 2: %v", len(got), got)
	}
	// Two key pairs must both constrain the match.
	q2 := `
		for $a in parallelize(({"x": 1, "y": "u"}, {"x": 1, "y": "v"}))
		for $b in parallelize(({"x": 1, "y": "u", "tag": "m1"}, {"x": 2, "y": "u", "tag": "m2"}))
		where $a.x eq $b.x and $a.y eq $b.y
		return $b.tag`
	e := New(Config{Parallelism: 2, Executors: 2})
	if got := run(t, e, q2); !reflect.DeepEqual(got, []string{`"m1"`}) {
		t.Errorf("multi-key join got %v, want [\"m1\"]", got)
	}
}

func TestJoinLocalStreamMatchesClusterCollect(t *testing.T) {
	// The same compiled statement must produce identical rows through the
	// local streaming API (joinEval) and the cluster path (JoinByKey).
	e := joinTestEngine(t, Config{Parallelism: 4, Executors: 4})
	st, err := e.Compile(joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []string
	if err := st.Stream(func(it Item) error {
		streamed = append(streamed, string(it.AppendJSON(nil)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	collected, err := e.QueryJSON(joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(streamed)
	sort.Strings(collected)
	if !reflect.DeepEqual(streamed, collected) {
		t.Errorf("stream vs collect:\nstream  %v\ncollect %v", streamed, collected)
	}
	// The local stream preserves nested-loop (left-major) order exactly.
	var ordered []string
	if err := st.Stream(func(it Item) error {
		ordered = append(ordered, string(it.AppendJSON(nil)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ordered, wantJoin) {
		t.Errorf("local join order:\ngot  %v\nwant %v", ordered, wantJoin)
	}
}

func TestJoinHeterogeneousKeyTypesError(t *testing.T) {
	e := New(Config{Parallelism: 2, Executors: 2})
	if err := e.RegisterJSON("l", []string{`{"k": 1}`, `{"k": "s"}`}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterJSON("r", []string{`{"k": 2}`}); err != nil {
		t.Fatal(err)
	}
	q := `for $a in collection("l") for $b in collection("r") where $a.k eq $b.k return $a`
	if _, err := e.Query(q); err == nil {
		t.Error("mixed string/number join keys must error like the nested loop's eq")
	}
	nested := New(Config{Parallelism: 2, Executors: 2, DisableJoin: true})
	nested.RegisterItems("l", mustItems(t, e, "l"))
	nested.RegisterItems("r", mustItems(t, e, "r"))
	if _, err := nested.Query(q); err == nil {
		t.Error("nested loop baseline should error on mixed key types")
	}
}

func mustItems(t *testing.T, e *Engine, name string) []Item {
	t.Helper()
	items, err := e.Query(fmt.Sprintf("collection(%q)", name))
	if err != nil {
		t.Fatal(err)
	}
	return items
}

func TestJoinLargeIntegerKeysStayExact(t *testing.T) {
	// 2^53 and 2^53+1 collapse to the same float64; the exact integer sort
	// key path must keep them apart in join buckets.
	e := New(Config{Parallelism: 2, Executors: 2})
	q := `
		for $a in parallelize(({"k": 9007199254740992, "v": "lo"}, {"k": 9007199254740993, "v": "hi"}))
		for $b in parallelize(({"k": 9007199254740993, "tag": "match"}))
		where $a.k eq $b.k
		return $a.v`
	if got := run(t, e, q); !reflect.DeepEqual(got, []string{`"hi"`}) {
		t.Errorf("large-int join matched %v, want [\"hi\"]", got)
	}
}

func TestJoinFallbackStillWorks(t *testing.T) {
	// A disjunctive predicate declines detection and must keep the
	// (correct) nested-loop answers.
	q := `
		for $o in collection("orders")
		for $c in collection("customers")
		where $o.cust eq $c.cid or $o.oid eq $c.cid
		return { "oid": $o.oid, "name": $c.name }`
	e := joinTestEngine(t, Config{Parallelism: 4, Executors: 4})
	if plan := mustExplain(t, e, q); strings.Contains(plan, "Join[") {
		t.Fatalf("disjunctive predicate should not join:\n%s", plan)
	}
	nested := joinTestEngine(t, Config{Parallelism: 4, Executors: 4, DisableJoin: true})
	if !reflect.DeepEqual(sortedRun(t, e, q), sortedRun(t, nested, q)) {
		t.Error("fallback results diverge from nested loop")
	}
}

func TestJoinDownstreamClausesStillApply(t *testing.T) {
	// group-by, order-by and count after a join consume the joined tuples.
	q := `
		for $o in collection("orders")
		for $c in collection("customers")
		where $o.cust eq $c.cid
		group by $n := $c.name
		order by $n ascending
		count $i
		return { "i": $i, "name": $n, "orders": count($o) }`
	e := joinTestEngine(t, Config{Parallelism: 4, Executors: 4})
	nested := joinTestEngine(t, Config{Parallelism: 4, Executors: 4, DisableJoin: true})
	got := run(t, e, q)
	want := run(t, nested, q)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("join + downstream clauses:\ngot  %v\nwant %v", got, want)
	}
	wantRows := []string{
		`{"i" : 1, "name" : "ada", "orders" : 2}`,
		`{"i" : 2, "name" : "bob", "orders" : 1}`,
		`{"i" : 3, "name" : "nil", "orders" : 1}`,
	}
	if !reflect.DeepEqual(got, wantRows) {
		t.Errorf("join + group/order/count:\ngot  %v\nwant %v", got, wantRows)
	}
}

func TestJoinShuffleMetricsReported(t *testing.T) {
	e := joinTestEngine(t, Config{Parallelism: 4, Executors: 4})
	e.ResetMetrics()
	if _, err := e.Query(joinQuery); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics(); m.ShuffleRecords == 0 {
		t.Error("shuffle hash join reported no shuffled records")
	}
}

func TestJoinNonIntegerDecimalKeyDoesNotMatchInteger(t *testing.T) {
	// Dec(2^53 + 0.5) rounds to the same float64 as Int(2^53); the join
	// bucket must still keep them apart, agreeing with the nested loop's
	// exact eq.
	q := `
		for $a in parallelize(({"k": 9007199254740992.5, "v": "dec"}))
		for $b in parallelize(({"k": 9007199254740992}))
		where $a.k eq $b.k
		return $a.v`
	for _, disable := range []bool{false, true} {
		e := New(Config{Parallelism: 2, Executors: 2, DisableJoin: disable})
		got, err := e.Query(q)
		if err != nil {
			t.Fatalf("disable=%v: %v", disable, err)
		}
		if len(got) != 0 {
			t.Errorf("disable=%v: decimal key falsely matched integer: %v", disable, got)
		}
	}
}

func TestJoinEmptyProbeSideSkipsBuildErrors(t *testing.T) {
	// With an empty left input the nested loop never evaluates the right
	// side's keys; the local join path must not either, even when a right
	// key is malformed (non-atomic).
	q := `
		for $a in parallelize(())
		for $b in parallelize(({"k": [1, 2]}))
		where $a.k eq $b.k
		return $a`
	e := New(Config{Parallelism: 2, Executors: 2})
	st, err := e.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := st.Stream(func(Item) error { n++; return nil }); err != nil {
		t.Fatalf("local join path evaluated the build side of an empty probe: %v", err)
	}
	if n != 0 {
		t.Errorf("empty probe side yielded %d rows", n)
	}
}

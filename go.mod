module rumble

go 1.22

package rumble

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rumble/internal/item"
)

// segmentConformanceData registers the shared conformance collections
// file-backed: every text-expressible collection is written to a
// JSON-Lines file under dir (once — engines registered against the same
// dir share the files and their ingested `.segments` siblings). The
// in-memory "edge" collection keeps its item registration — its values
// (NaN, -0.0) have no JSON-text form — and exercises the in-memory
// fallback next to segment-backed sources.
func segmentConformanceData(t *testing.T, eng *Engine, dir string) {
	t.Helper()
	for name, lines := range vectorConformanceJSON() {
		path := filepath.Join(dir, name+".jsonl")
		if _, err := os.Stat(path); err != nil {
			text := ""
			if len(lines) > 0 {
				text = strings.Join(lines, "\n") + "\n"
			}
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		eng.RegisterCollection(name, path)
	}
	registerEdgeCollection(eng)
}

// TestSegmentScanConformance pins the segment store's core contract: a
// segment-backed scan is observationally identical to the JSON-Lines scan
// it replaces. For every query of the shared vector corpus, an engine
// with Segments on must reproduce its Segments-off twin bit for bit —
// values, emit order, and which error surfaces — across morsel worker
// counts 1, 2 and 8 and with vectorization on and off. Only the metrics
// may differ: the segment engines must actually have served segments
// (SegmentsRead > 0), or the whole comparison would be vacuous.
func TestSegmentScanConformance(t *testing.T) {
	dir := t.TempDir()
	configs := []struct {
		workers   int
		vectorize bool
	}{
		{workers: 2, vectorize: false},
		{workers: 1, vectorize: true},
		{workers: 2, vectorize: true},
		{workers: 8, vectorize: true},
	}
	type pair struct {
		raw, seg, item *Engine
		workers        int
		vectorize      bool
	}
	pairs := make([]pair, len(configs))
	for i, cfg := range configs {
		raw := New(Config{Parallelism: 2, Executors: cfg.workers, Vectorize: cfg.vectorize})
		seg := New(Config{Parallelism: 2, Executors: cfg.workers, Vectorize: cfg.vectorize, Segments: true})
		// The third engine pins the lane-native scan against the item path
		// it replaced: same segments, whole-row decode per morsel.
		itemEng := New(Config{Parallelism: 2, Executors: cfg.workers, Vectorize: cfg.vectorize, Segments: true, NoLaneScan: true})
		segmentConformanceData(t, raw, dir)
		segmentConformanceData(t, seg, dir)
		segmentConformanceData(t, itemEng, dir)
		pairs[i] = pair{raw: raw, seg: seg, item: itemEng, workers: cfg.workers, vectorize: cfg.vectorize}
	}

	for _, tc := range vectorConformanceCases {
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range pairs {
				label := fmt.Sprintf("workers=%d vectorize=%v", p.workers, p.vectorize)
				rs, err := p.raw.Compile(tc.query)
				if err != nil {
					t.Fatalf("%s: compile (raw): %v", label, err)
				}
				ss, err := p.seg.Compile(tc.query)
				if err != nil {
					t.Fatalf("%s: compile (segments): %v", label, err)
				}
				if rm, sm := rs.Mode(), ss.Mode(); rm != sm {
					t.Fatalf("%s: mode differs: raw %s vs segments %s", label, rm, sm)
				}
				is, err := p.item.Compile(tc.query)
				if err != nil {
					t.Fatalf("%s: compile (lane-off): %v", label, err)
				}
				rItems, rErr := streamAll(rs)
				sItems, sErr := streamAll(ss)
				iItems, iErr := streamAll(is)
				if (rErr == nil) != (sErr == nil) || (rErr == nil) != (iErr == nil) {
					t.Fatalf("%s: error mismatch: raw %v vs segments %v vs lane-off %v", label, rErr, sErr, iErr)
				}
				if rErr != nil {
					if rErr.Error() != sErr.Error() || rErr.Error() != iErr.Error() {
						t.Fatalf("%s: error selection differs\nraw:      %s\nsegments: %s\nlane-off: %s", label, rErr, sErr, iErr)
					}
					continue
				}
				got, want := item.SerializeSequence(sItems), item.SerializeSequence(rItems)
				if got != want {
					t.Fatalf("%s: streamed results differ\nsegments:\n%s\nraw:\n%s", label, got, want)
				}
				if gotItem := item.SerializeSequence(iItems); gotItem != want {
					t.Fatalf("%s: lane-off results differ\nlane-off:\n%s\nraw:\n%s", label, gotItem, want)
				}
			}
		})
	}

	for _, p := range pairs {
		m := p.seg.Metrics()
		if mi := p.item.Metrics(); p.vectorize && mi.SegmentsRead == 0 {
			t.Errorf("workers=%d vectorize=%v: lane-off engine never served segments", p.workers, p.vectorize)
		}
		if p.vectorize && m.SegmentsRead == 0 {
			t.Errorf("workers=%d vectorize=%v: SegmentsRead = 0 — the segment path never engaged, the conformance run was vacuous",
				p.workers, p.vectorize)
		}
		if !p.vectorize && m.SegmentsRead != 0 {
			t.Errorf("workers=%d vectorize=%v: SegmentsRead = %d — segments must not engage outside the vector backend",
				p.workers, p.vectorize, m.SegmentsRead)
		}
	}
}

// TestSegmentScanLiteralConformance runs the language conformance table
// on a segments-enabled engine: queries that never touch storage must be
// completely indifferent to the store's existence.
func TestSegmentScanLiteralConformance(t *testing.T) {
	eng := New(Config{Parallelism: 2, Executors: 2, Vectorize: true, Segments: true})
	for name, c := range conformanceCases {
		t.Run(name, func(t *testing.T) {
			out, err := eng.QueryJSON(c.query)
			if c.wantErr {
				if err == nil {
					t.Fatalf("query %s should fail, got %v", c.query, out)
				}
				return
			}
			if err != nil {
				t.Fatalf("query failed: %v\n%s", err, c.query)
			}
			if got := strings.Join(out, "\n"); got != c.want {
				t.Errorf("got:\n%s\nwant:\n%s\nquery: %s", got, c.want, c.query)
			}
		})
	}
}

// TestZoneMapSkipReadsFraction pins zone-map pruning with metrics: a
// selective predicate over sorted data must skip the segments its zone
// maps prove irrelevant before any row is touched, so the records
// actually read stay a small fraction of the collection — with results
// identical to the unpruned JSON-line scan.
func TestZoneMapSkipReadsFraction(t *testing.T) {
	const rows = 40000 // ~10 segments of 4096 rows
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, `{"g": %d, "v": %d}`+"\n", i%7, i)
	}
	path := filepath.Join(t.TempDir(), "sorted.jsonl")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	// v ge 36000 touches only the last ~2 of ~10 segments; the grouped
	// aggregation needs every surviving row, so nothing early-exits.
	query := fmt.Sprintf(`for $o in json-file(%q)
		where $o.v ge 36000
		group by $g := $o.g
		return { "g": $g, "n": count($o), "s": sum($o.v) }`, path)

	ref := New(Config{Parallelism: 2, Executors: 2, Vectorize: true})
	rs, err := ref.Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	refItems, err := streamAll(rs)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		eng := New(Config{Parallelism: 2, Executors: workers, Vectorize: true, Segments: true})
		st, err := eng.Compile(query)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Mode() != "Vector" {
			t.Fatalf("workers=%d: mode = %s, want Vector", workers, st.Mode())
		}
		eng.ResetMetrics()
		items, err := streamAll(st)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got, want := item.SerializeSequence(items), item.SerializeSequence(refItems); got != want {
			t.Fatalf("workers=%d: pruned results differ from unpruned scan\npruned:\n%s\nunpruned:\n%s", workers, got, want)
		}
		m := eng.Metrics()
		if m.SegmentsSkipped < 7 {
			t.Errorf("workers=%d: SegmentsSkipped = %d, want >= 7 (zone maps must prune the sorted prefix)", workers, m.SegmentsSkipped)
		}
		if m.SegmentsRead > 2 {
			t.Errorf("workers=%d: SegmentsRead = %d, want <= 2", workers, m.SegmentsRead)
		}
		if max := int64(rows / 4); m.RecordsRead > max {
			t.Errorf("workers=%d: RecordsRead = %d, want <= %d (pruning must keep reads to the matching tail)",
				workers, m.RecordsRead, max)
		}
	}
}

// TestSegmentBackgroundReingest pins the stale-store contract end to end:
// when the source file changed under an existing `.segments` sibling, the
// first query serves the fresh raw scan immediately (no stale segment may
// answer, no ingest stall on the query path) while the store rebuilds in
// the background; once the rebuild lands, queries serve segments again and
// the server's segment_reingests counter records exactly one rebuild.
func TestSegmentBackgroundReingest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grow.jsonl")
	write := func(rows int) {
		var sb strings.Builder
		for i := 0; i < rows; i++ {
			fmt.Fprintf(&sb, `{"g": %d, "v": %d}`+"\n", i%5, i)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	query := fmt.Sprintf(`for $o in json-file(%q) where $o.v ge 4990 return $o.v`, path)
	run := func(eng *Engine) string {
		t.Helper()
		st, err := eng.Compile(query)
		if err != nil {
			t.Fatal(err)
		}
		items, err := streamAll(st)
		if err != nil {
			t.Fatal(err)
		}
		return item.SerializeSequence(items)
	}

	write(5000)
	eng1 := New(Config{Parallelism: 2, Executors: 2, Vectorize: true, Segments: true})
	first := run(eng1) // ingests the v1 store
	if first == "" {
		t.Fatal("v1 query returned nothing")
	}

	write(5100) // the v1 manifest's source hash is now stale
	eng2 := New(Config{Parallelism: 2, Executors: 2, Vectorize: true, Segments: true})
	eng2.ResetMetrics()
	got := run(eng2)
	want := run(New(Config{Parallelism: 2, Executors: 2, Vectorize: true}))
	if got != want {
		t.Fatalf("stale-store query served wrong data\ngot:\n%s\nwant:\n%s", got, want)
	}
	if m := eng2.Metrics(); m.SegmentsRead != 0 {
		t.Errorf("stale-store query read %d segments; it must fall back to the raw scan", m.SegmentsRead)
	}
	eng2.env.Segments.WaitRebuilds()
	if m := eng2.Metrics(); m.SegmentReingests != 1 {
		t.Errorf("SegmentReingests = %d, want 1", m.SegmentReingests)
	}
	eng2.ResetMetrics()
	if got := run(eng2); got != want {
		t.Fatalf("post-rebuild query differs\ngot:\n%s\nwant:\n%s", got, want)
	}
	if m := eng2.Metrics(); m.SegmentsRead == 0 {
		t.Error("post-rebuild query still not serving segments")
	}
}

// TestSegmentBufferPoolMetrics pins the cache-residency counters end to
// end: the first evaluation decodes every segment once (misses), a rerun
// on the same engine serves entirely from the buffer pool (hits, and no
// simulated storage reads), and each full segment is decoded by exactly
// one of its four morsels.
func TestSegmentBufferPoolMetrics(t *testing.T) {
	const rows = 12288 // 3 full segments = 12 morsels
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, `{"v": %d}`+"\n", i)
	}
	path := filepath.Join(t.TempDir(), "pool.jsonl")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := New(Config{Parallelism: 2, Executors: 2, Vectorize: true, Segments: true})
	query := fmt.Sprintf(`count(for $o in json-file(%q) where $o.v ge 0 return $o)`, path)
	run := func() {
		t.Helper()
		st, err := eng.Compile(query)
		if err != nil {
			t.Fatal(err)
		}
		items, err := streamAll(st)
		if err != nil {
			t.Fatal(err)
		}
		if got := item.SerializeSequence(items); got != fmt.Sprint(rows) {
			t.Fatalf("count = %s, want %d", got, rows)
		}
	}
	eng.ResetMetrics()
	run()
	m := eng.Metrics()
	if m.SegmentsRead != 3 || m.SegmentCacheMiss != 3 || m.SegmentCacheHits != 9 {
		t.Errorf("cold run: read=%d miss=%d hits=%d, want 3/3/9 (one decode per segment, three pooled fetches)",
			m.SegmentsRead, m.SegmentCacheMiss, m.SegmentCacheHits)
	}
	eng.ResetMetrics()
	run()
	m = eng.Metrics()
	if m.SegmentCacheMiss != 0 || m.SegmentCacheHits != 12 {
		t.Errorf("hot run: miss=%d hits=%d, want 0/12 (every morsel must ride the buffer pool)",
			m.SegmentCacheMiss, m.SegmentCacheHits)
	}
}
